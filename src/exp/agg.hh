/**
 * @file
 * Grid-aware aggregation over RunResult sets.
 *
 * The per-figure benches all reduce the same way: run a grid, slice
 * the rows along one label axis (workload, governor, TDP, ...),
 * collapse each slice with a statistic, and express cells relative
 * to a designated baseline cell of the same slice. These helpers
 * make that pipeline declarative — groupBy() slices on a label,
 * mean()/median()/percentile() collapse, and deltasVsBaseline()
 * computes baseline-relative percent changes — so a bench states
 * *what* its figure shows instead of hand-rolling loops and
 * accumulators (see bench_fig7_spec.cc for the pattern).
 *
 * All helpers are pure functions over const rows; groups hold
 * pointers into the caller's result vector, which must outlive them.
 */

#ifndef SYSSCALE_EXP_AGG_HH
#define SYSSCALE_EXP_AGG_HH

#include <functional>
#include <string>
#include <vector>

#include "exp/experiment.hh"

namespace sysscale {
namespace exp {
namespace agg {

/** Extracts the figure's quantity from one result row. */
using Metric = std::function<double(const RunResult &)>;

/** Value of label @p key on @p res, or nullptr when absent. */
const std::string *findLabel(const RunResult &res,
                             const std::string &key);

/** One slice of a result set: all rows sharing a label value. */
struct Group
{
    std::string key; //!< The shared label value.
    std::vector<const RunResult *> rows;
};

/**
 * Slice @p results along label @p label, preserving first-seen
 * order (which for expandGrid() grids is axis order). Rows missing
 * the label are collected under the empty key.
 */
std::vector<Group> groupBy(const std::vector<RunResult> &results,
                           const std::string &label);

/**
 * First row in @p rows whose label @p label equals @p value;
 * nullptr when absent.
 */
const RunResult *findRow(const std::vector<const RunResult *> &rows,
                         const std::string &label,
                         const std::string &value);

/** Metric values of @p rows, in row order. */
std::vector<double> collect(
    const std::vector<const RunResult *> &rows, const Metric &m);

/** @name Statistics. NaN on an empty sample. @{ */
double mean(const std::vector<double> &xs);
double median(std::vector<double> xs);

/**
 * The @p p-th percentile (p in [0, 100]) with linear interpolation
 * between order statistics; a single-element sample returns that
 * element for every p.
 */
double percentile(std::vector<double> xs, double p);
/** @} */

/** One row's metric relative to its group's baseline row. */
struct Delta
{
    const RunResult *row;
    const RunResult *baseline;
    double pct; //!< (m(row) / m(baseline) - 1) * 100.
};

/**
 * Percent change of @p m for every non-baseline row of @p g against
 * the group's baseline cell — the row whose label @p label equals
 * @p baseline_value. Returns an empty vector when the group has no
 * baseline row; a zero-valued baseline metric yields NaN/inf deltas
 * rather than throwing.
 */
std::vector<Delta> deltasVsBaseline(const Group &g,
                                    const std::string &label,
                                    const std::string &baseline_value,
                                    const Metric &m);

/**
 * Percent change of @p m for the single row with @p label ==
 * @p value against the row with @p label == @p baseline_value.
 * Throws std::invalid_argument when either row is missing from the
 * group — a figure must fail loudly when a grid axis it expects was
 * dropped or renamed, never print a silent 0%.
 */
double deltaVs(const Group &g, const std::string &label,
               const std::string &value,
               const std::string &baseline_value, const Metric &m);

} // namespace agg
} // namespace exp
} // namespace sysscale

#endif // SYSSCALE_EXP_AGG_HH
