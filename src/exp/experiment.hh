/**
 * @file
 * Declarative experiment cells.
 *
 * An ExperimentSpec pins everything one simulation run depends on —
 * SoC configuration, workload profile, governor, measurement window,
 * pinning overrides, and RNG seed — so a run can execute anywhere
 * (serial loop, worker thread, remote host) and produce the same
 * RunResult. runCell() is the single execution path: it owns an
 * isolated Simulator and Soc per call, which is what makes grid
 * execution embarrassingly parallel and bit-identical to a serial
 * sweep of the same cells.
 *
 * Governors are resolved by name through the core governor registry
 * (core/governor_registry.hh — "fixed", "sysscale", "ondemand",
 * "adaptive", ... plus the policy-less "collect") so grids serialize
 * to plain strings, with optional key=value parameters riding along;
 * a custom factory hook covers ablation variants.
 */

#ifndef SYSSCALE_EXP_EXPERIMENT_HH
#define SYSSCALE_EXP_EXPERIMENT_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "soc/config.hh"
#include "soc/op_point.hh"
#include "soc/pmu.hh"
#include "soc/soc.hh"
#include "workloads/profile.hh"
#include "workloads/scenario.hh"

namespace sysscale {
namespace exp {

/** Builds a fresh governor instance for one cell (thread isolation). */
using GovernorFactory =
    std::function<std::unique_ptr<soc::PmuPolicy>()>;

/** Key=value annotations carried through to result rows. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/**
 * Governor parameters (key=value, order-preserving). Same shape as
 * core::GovernorParams; part of the cell's content address.
 */
using GovernorParams =
    std::vector<std::pair<std::string, std::string>>;

/**
 * One grid cell: a fully-specified simulation run.
 */
struct ExperimentSpec
{
    /** Unique cell identifier (grids derive it from the axes). */
    std::string id;

    soc::SocConfig soc = soc::skylakeConfig();
    workloads::WorkloadProfile workload;

    /**
     * Concurrent activity around the base workload: overlay layers
     * (merged by workloads::CompositeAgent) and timed SoC mutations
     * (replayed by workloads::ScenarioScript). Part of the cell's
     * content address — two cells differing only here are different
     * simulations.
     */
    workloads::Scenario scenario;

    /**
     * Registry name of the governor ("collect" or empty = no
     * governor, counter collection only).
     */
    std::string governor = "collect";

    /**
     * Parameters handed to the governor's constructor (empty for
     * the parameterless governors). Part of the content address —
     * two cells differing only here are different simulations.
     */
    GovernorParams governorParams;

    /** Overrides @ref governor when set (ablation variants). */
    GovernorFactory governorFactory;

    /**
     * Non-owning policy instance to run instead of building one —
     * lets callers inspect governor state after the run. Only legal
     * on serial execution paths; the parallel runner rejects it.
     */
    soc::PmuPolicy *borrowedPolicy = nullptr;

    /** Simulator root-RNG seed. */
    std::uint64_t seed = 1;

    Tick warmup = 200 * kTicksPerMs;
    Tick window = 2 * kTicksPerSec;

    bool hdPanel = true;
    bool camera = false;

    /** Pin the CPU cores to this frequency (0 = PBM-controlled). */
    Hertz pinnedCoreFreq = 0.0;

    /** Pin the IO/memory domains to this operating point. */
    std::optional<soc::OperatingPoint> pinnedOpPoint;

    /** Apply unoptimized (boot-trained) MRC at the pinned point. */
    bool pinnedUnoptimizedMrc = false;

    Labels labels;

    /**
     * Compares the serializable content only: governorFactory and
     * borrowedPolicy are runtime-local hooks, invisible to
     * serializeSpec()/specKey(), and are deliberately excluded here
     * so the spec_codec round-trip invariant
     * parseSpec(serializeSpec(s)) == s can hold.
     */
    bool
    operator==(const ExperimentSpec &o) const
    {
        return id == o.id && soc == o.soc && workload == o.workload &&
               scenario == o.scenario &&
               governor == o.governor &&
               governorParams == o.governorParams && seed == o.seed &&
               warmup == o.warmup && window == o.window &&
               hdPanel == o.hdPanel && camera == o.camera &&
               pinnedCoreFreq == o.pinnedCoreFreq &&
               pinnedOpPoint == o.pinnedOpPoint &&
               pinnedUnoptimizedMrc == o.pinnedUnoptimizedMrc &&
               labels == o.labels;
    }
};

/**
 * Outcome of one cell.
 */
struct RunResult
{
    std::string id;
    std::string governor;
    std::string workload;

    /** False when the cell failed; @ref error holds the reason. */
    bool ok = false;
    std::string error;

    soc::RunMetrics metrics{};
    soc::CounterSnapshot counters{};

    /** Host wall-clock the cell took on its worker (seconds). */
    double hostSeconds = 0.0;

    /**
     * Named stats dump ("path.stat value # desc" lines) of the
     * cell's whole stats::StatGroup hierarchy, taken after the
     * measurement window. Rides the cache JSON as its own member —
     * the CSV/JSON report surfaces are unchanged — and feeds the
     * sweep_grid --stats-csv wide-format export.
     */
    std::string statsDump;

    Labels labels;
};

/** @name Governor registry. @{ */

/** Registered governor names, in presentation order. */
const std::vector<std::string> &governorNames();

/** Whether @p name resolves (including "collect"/""). */
bool isGovernorName(const std::string &name);

/**
 * Factory for registered governor @p name constructed with
 * @p params; returns a factory producing nullptr for "collect"/"".
 * Throws std::invalid_argument on unknown names or parameters the
 * governor rejects — eagerly, at factory-construction time, so bad
 * tokens fail before any cell runs.
 */
GovernorFactory governorFactory(const std::string &name,
                                const GovernorParams &params = {});

/**
 * A sweep-console governor token: `name[:key=value[:key=value...]]`.
 * ',' separates whole tokens on the command line, ':' separates the
 * parameters of one token, and values may contain '@' (the userspace
 * governor's at=<ms>@<index> schedule entries).
 */
struct GovernorToken
{
    std::string name;
    GovernorParams params;
};

/**
 * Split a governor token into name + parameters. Throws
 * std::invalid_argument on malformed segments (missing '=' or empty
 * key); the *name* is not checked here — pair with isGovernorName()
 * or governorFactory() for that.
 */
GovernorToken parseGovernorToken(const std::string &token);
/** @} */

/**
 * Throw std::invalid_argument if @p spec cannot run (empty workload,
 * zero window, unknown governor). runCell() folds the message into
 * an error result instead of propagating.
 */
void validateSpec(const ExperimentSpec &spec);

/** Per-call execution options for @ref runCell. */
struct RunCellOptions
{
    /**
     * When non-empty, the cell runs with an obs::TraceSink installed
     * and its Chrome trace-event JSON is written to
     * `<traceDir>/<specKey>.trace.json` (falling back to a sanitized
     * cell id for specs that cannot be content-addressed). Traces
     * contain only sim-clock timestamps, so the same cell produces
     * byte-identical trace files regardless of --jobs or skip-ahead.
     */
    std::string traceDir;
};

/**
 * Execute one cell on the calling thread. Never throws: failures
 * (bad spec, exceptions out of the model) come back as ok=false
 * results so one cell cannot poison its siblings.
 */
RunResult runCell(const ExperimentSpec &spec);

/** As above, with tracing/export options. */
RunResult runCell(const ExperimentSpec &spec,
                  const RunCellOptions &opts);

/**
 * One time-slice of a cell: simulate [t0, t1] of the cell's
 * warmup+window timeline, optionally restoring the simulator from a
 * snapshot at t0 and publishing one at t1. runCell() is the
 * degenerate full slice; a chain of slices over the same spec whose
 * snapshots hand off at the cut ticks produces final metrics, stats
 * dump, and trace byte-identical to the unsliced run
 * (tests/test_snapshot.cc pins this differentially).
 */
struct SliceOptions
{
    /** Slice start, absolute simulated tick. */
    Tick t0 = 0;

    /** Slice end; 0 means "to the end of the cell" (warmup+window). */
    Tick t1 = 0;

    /**
     * Snapshot restored before simulating; required when t0 > 0. A
     * missing, truncated, corrupt, stale-version, or wrong-spec
     * snapshot degrades to a cache miss — the slice re-simulates
     * from tick 0 (still ending, and snapshotting, at t1) instead of
     * failing.
     */
    std::string inSnap;

    /**
     * Snapshot published at t1 via the tmp+rename protocol (empty =
     * none). Written before stats finalization so a restored
     * continuation sees exactly the mid-run state.
     */
    std::string outSnap;

    /** As RunCellOptions::traceDir; the trace file is written only
     *  by the slice that reaches the end of the cell. */
    std::string traceDir;
};

/**
 * Execute one slice of a cell. Never throws (same contract as
 * runCell). Slices that end before warmup+window return ok=true with
 * empty metrics/stats — only the final slice yields the cell's
 * RunMetrics, counters, stats dump, and trace.
 */
RunResult runCellSlice(const ExperimentSpec &spec,
                       const SliceOptions &opts);

/**
 * The snapshot-facing identity of @p spec: its content key
 * (exp::specKey) when serializable, else the sanitized cell id.
 * Snapshot headers are stamped with it and restores reject a
 * mismatch, so a snapshot can never silently resume a different
 * simulation.
 */
std::string snapshotSpecKey(const ExperimentSpec &spec);

/**
 * Declarative governor x workload x TDP x seed grid with shared
 * measurement settings; expandGrid() produces the cross product in a
 * deterministic order (workload-major, then governor, TDP, seed).
 */
struct GridSpec
{
    soc::SocConfig base = soc::skylakeConfig();
    std::vector<workloads::WorkloadProfile> workloads;
    std::vector<std::string> governors{"sysscale"};
    std::vector<Watt> tdps{4.5};
    std::vector<std::uint64_t> seeds{1};

    Tick warmup = 200 * kTicksPerMs;
    Tick window = 2 * kTicksPerSec;
    bool hdPanel = true;
    bool camera = false;

    /** Scenario applied to every cell (empty = none). */
    workloads::Scenario scenario;

    /**
     * Presentation name of @ref scenario; when non-empty every cell
     * gets a "scenario" label and an id suffix (ids and labels stay
     * exactly as before for scenario-less grids).
     */
    std::string scenarioName;

    /** One value of the scenario grid axis. */
    struct NamedScenario
    {
        std::string name;
        workloads::Scenario scenario;
    };

    /**
     * Scenario *axis*: when non-empty it overrides @ref scenario /
     * @ref scenarioName and becomes a fifth grid dimension, expanded
     * innermost (after seed). Every cell then carries a "scenario"
     * label and a "/NAME" id suffix — including for an explicit
     * "none" entry, so the axis values stay distinguishable in
     * aggregation.
     */
    std::vector<NamedScenario> scenarios;
};

std::vector<ExperimentSpec> expandGrid(const GridSpec &grid);

} // namespace exp
} // namespace sysscale

#endif // SYSSCALE_EXP_EXPERIMENT_HH
