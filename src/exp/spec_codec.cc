#include "exp/spec_codec.hh"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "compute/cstates.hh"
#include "dram/spec.hh"
#include "exp/report.hh"

namespace sysscale {
namespace exp {

namespace {

/**
 * The shared round-trip number format (report.hh): "%.17g" survives
 * strtod exactly, and writer/reader cannot drift apart.
 */
std::string
num(double v)
{
    return formatDouble(v);
}

/** Keep string values single-line: escape backslash, LF, CR. */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
unescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\') {
            out += s[i];
            continue;
        }
        if (i + 1 >= s.size())
            throw std::invalid_argument(
                "spec codec: dangling escape in string value");
        switch (s[++i]) {
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          default:
            throw std::invalid_argument(
                "spec codec: unknown escape in string value");
        }
    }
    return out;
}

const char *
workloadClassToken(workloads::WorkloadClass c)
{
    return workloads::workloadClassName(c);
}

workloads::WorkloadClass
workloadClassFromToken(const std::string &token)
{
    using workloads::WorkloadClass;
    for (const WorkloadClass c :
         {WorkloadClass::CpuSingleThread, WorkloadClass::CpuMultiThread,
          WorkloadClass::Graphics, WorkloadClass::BatteryLife,
          WorkloadClass::Micro}) {
        if (token == workloads::workloadClassName(c))
            return c;
    }
    throw std::invalid_argument(
        "spec codec: unknown workload class \"" + token + "\"");
}

dram::DramType
dramTypeFromToken(const std::string &token)
{
    for (const dram::DramType t :
         {dram::DramType::LPDDR3, dram::DramType::DDR4}) {
        if (token == dram::dramTypeName(t))
            return t;
    }
    throw std::invalid_argument(
        "spec codec: unknown DRAM type \"" + token + "\"");
}

/** Emitter holding the growing document. */
class Writer
{
  public:
    void
    put(const std::string &key, const std::string &value)
    {
        text_ += key + " = " + value + "\n";
    }

    void putStr(const std::string &key, const std::string &v)
    {
        put(key, escape(v));
    }

    void putNum(const std::string &key, double v) { put(key, num(v)); }

    void
    putU64(const std::string &key, std::uint64_t v)
    {
        put(key, std::to_string(v));
    }

    void
    putBool(const std::string &key, bool v)
    {
        put(key, v ? "1" : "0");
    }

    std::string take() { return std::move(text_); }

  private:
    std::string text_;
};

/** Parsed key/value view with strict consumption tracking. */
class Reader
{
  public:
    explicit Reader(const std::string &text)
    {
        std::istringstream is(text);
        std::string line;
        if (!std::getline(is, line) ||
            line != "sysscale-spec v" +
                        std::to_string(kSpecFormatVersion)) {
            throw std::invalid_argument(
                "spec codec: missing or unsupported version header");
        }
        while (std::getline(is, line)) {
            if (line.empty())
                continue;
            const std::size_t sep = line.find(" = ");
            if (sep == std::string::npos)
                throw std::invalid_argument(
                    "spec codec: malformed line \"" + line + "\"");
            const std::string key = line.substr(0, sep);
            if (!fields_.emplace(key, line.substr(sep + 3)).second)
                throw std::invalid_argument(
                    "spec codec: duplicate key \"" + key + "\"");
        }
    }

    const std::string &
    get(const std::string &key)
    {
        const auto it = fields_.find(key);
        if (it == fields_.end())
            throw std::invalid_argument(
                "spec codec: missing key \"" + key + "\"");
        consumed_.insert(key);
        return it->second;
    }

    std::string getStr(const std::string &key)
    {
        return unescape(get(key));
    }

    double
    getNum(const std::string &key)
    {
        const std::string &v = get(key);
        char *end = nullptr;
        const double d = std::strtod(v.c_str(), &end);
        if (end != v.c_str() + v.size() || v.empty())
            throw std::invalid_argument(
                "spec codec: bad number for \"" + key + "\"");
        return d;
    }

    std::uint64_t
    getU64(const std::string &key)
    {
        const std::string &v = get(key);
        // strtoull silently wraps negatives ("-1" -> 2^64-1), so
        // insist on a leading digit.
        if (v.empty() || v[0] < '0' || v[0] > '9')
            throw std::invalid_argument(
                "spec codec: bad integer for \"" + key + "\"");
        char *end = nullptr;
        const std::uint64_t u = std::strtoull(v.c_str(), &end, 10);
        if (end != v.c_str() + v.size())
            throw std::invalid_argument(
                "spec codec: bad integer for \"" + key + "\"");
        return u;
    }

    std::size_t
    getSize(const std::string &key)
    {
        return static_cast<std::size_t>(getU64(key));
    }

    bool
    getBool(const std::string &key)
    {
        const std::string &v = get(key);
        if (v == "1")
            return true;
        if (v == "0")
            return false;
        throw std::invalid_argument(
            "spec codec: bad boolean for \"" + key + "\"");
    }

    /** Fixed-arity space-separated double list. */
    std::vector<double>
    getNumList(const std::string &key, std::size_t arity)
    {
        std::istringstream is(get(key));
        std::vector<double> out;
        std::string token;
        while (is >> token) {
            char *end = nullptr;
            out.push_back(std::strtod(token.c_str(), &end));
            if (end != token.c_str() + token.size())
                throw std::invalid_argument(
                    "spec codec: bad number list for \"" + key +
                    "\"");
        }
        if (arity != 0 && out.size() != arity)
            throw std::invalid_argument(
                "spec codec: wrong arity for \"" + key + "\"");
        return out;
    }

    void
    finish() const
    {
        for (const auto &kv : fields_) {
            if (!consumed_.count(kv.first))
                throw std::invalid_argument(
                    "spec codec: unknown key \"" + kv.first + "\"");
        }
    }

  private:
    std::map<std::string, std::string> fields_;
    std::set<std::string> consumed_;
};

/** Emit @p wl under @p key_prefix, its phases under @p phase_prefix. */
void
writeProfile(Writer &body, const std::string &key_prefix,
             const std::string &phase_prefix,
             const workloads::WorkloadProfile &wl)
{
    body.putStr(key_prefix + "name", wl.name());
    body.put(key_prefix + "class", workloadClassToken(wl.klass()));
    body.putNum(key_prefix + "perf_scalability",
                wl.perfScalability());
    body.putU64(key_prefix + "phases", wl.numPhases());
    for (std::size_t i = 0; i < wl.numPhases(); ++i) {
        const workloads::Phase &p = wl.phase(i);
        const std::string pre = phase_prefix + std::to_string(i) + ".";
        body.putU64(pre + "duration", p.duration);
        body.putU64(pre + "active_threads", p.activeThreads);
        body.putNum(pre + "io_best_effort", p.ioBestEffort);
        body.putNum(pre + "core_freq_request", p.coreFreqRequest);
        body.putNum(pre + "gfx_freq_request", p.gfxFreqRequest);
        body.put(pre + "work",
                 num(p.work.cpiBase) + " " + num(p.work.mpki) + " " +
                     num(p.work.blockingFactor) + " " +
                     num(p.work.bytesPerInstr) + " " +
                     num(p.work.activity));
        body.put(pre + "gfx",
                 num(p.gfxWork.cyclesPerFrame) + " " +
                     num(p.gfxWork.bytesPerFrame) + " " +
                     num(p.gfxWork.targetFps) + " " +
                     num(p.gfxWork.activity));
        std::string res;
        for (const compute::CState c : compute::kAllCStates) {
            if (!res.empty())
                res += " ";
            res += num(p.residency.fraction(c));
        }
        body.put(pre + "residency", res);
    }
}

/**
 * Invert writeProfile(). @p allow_empty permits the zero-phase
 * default-constructed placeholder (legal only for the base
 * workload); scenario layers must always carry a real profile.
 */
workloads::WorkloadProfile
readProfile(Reader &r, const std::string &key_prefix,
            const std::string &phase_prefix, bool allow_empty)
{
    const std::string name = r.getStr(key_prefix + "name");
    const workloads::WorkloadClass klass =
        workloadClassFromToken(r.get(key_prefix + "class"));
    const double scal = r.getNum(key_prefix + "perf_scalability");
    const std::size_t n_phases = r.getSize(key_prefix + "phases");
    // Negated comparison so NaN (which fails every <=) also throws.
    if (!(scal >= 0.0 && scal <= 1.0))
        throw std::invalid_argument(
            "spec codec: perf scalability out of [0,1]");
    std::vector<workloads::Phase> phases;
    for (std::size_t i = 0; i < n_phases; ++i) {
        const std::string pre = phase_prefix + std::to_string(i) + ".";
        workloads::Phase p;
        p.duration = r.getU64(pre + "duration");
        // WorkloadProfile's zero-length-phase check is fatal; throw.
        if (p.duration == 0)
            throw std::invalid_argument(
                "spec codec: zero-length phase");
        p.activeThreads = r.getSize(pre + "active_threads");
        p.ioBestEffort = r.getNum(pre + "io_best_effort");
        p.coreFreqRequest = r.getNum(pre + "core_freq_request");
        p.gfxFreqRequest = r.getNum(pre + "gfx_freq_request");
        const std::vector<double> work =
            r.getNumList(pre + "work", 5);
        p.work.cpiBase = work[0];
        p.work.mpki = work[1];
        p.work.blockingFactor = work[2];
        p.work.bytesPerInstr = work[3];
        p.work.activity = work[4];
        const std::vector<double> gfx = r.getNumList(pre + "gfx", 4);
        p.gfxWork.cyclesPerFrame = gfx[0];
        p.gfxWork.bytesPerFrame = gfx[1];
        p.gfxWork.targetFps = gfx[2];
        p.gfxWork.activity = gfx[3];
        const std::vector<double> res =
            r.getNumList(pre + "residency", compute::kNumCStates);
        std::array<double, compute::kNumCStates> fractions{};
        double sum = 0.0;
        for (std::size_t c = 0; c < compute::kNumCStates; ++c) {
            // CStateResidency's own negativity and sum checks are
            // fatal (process exit); throw instead. Negated
            // comparisons so NaN fractions are rejected too.
            if (!(res[c] >= 0.0 && res[c] <= 1.0))
                throw std::invalid_argument(
                    "spec codec: residency fraction out of [0,1]");
            fractions[c] = res[c];
            sum += res[c];
        }
        if (!(std::fabs(sum - 1.0) <= 1e-6))
            throw std::invalid_argument(
                "spec codec: residency fractions do not sum to 1");
        p.residency = compute::CStateResidency(fractions);
        phases.push_back(std::move(p));
    }
    if (n_phases > 0) {
        return workloads::WorkloadProfile(name, klass,
                                          std::move(phases), scal);
    }
    if (!name.empty() || !allow_empty) {
        // A named profile cannot have zero phases (the constructor
        // would be fatal); only the default-constructed placeholder
        // base workload round-trips through this branch.
        throw std::invalid_argument(
            "spec codec: workload with zero phases");
    }
    return workloads::WorkloadProfile();
}

workloads::ScenarioActionKind
scenarioActionFromToken(const std::string &token)
{
    for (const auto k : workloads::kAllScenarioActionKinds) {
        if (token == workloads::scenarioActionName(k))
            return k;
    }
    throw std::invalid_argument(
        "spec codec: unknown scenario action \"" + token + "\"");
}

std::string
serializeImpl(const ExperimentSpec &spec, bool canonical)
{
    // Header first: the version participates in the hashed text.
    const std::string doc =
        "sysscale-spec v" + std::to_string(kSpecFormatVersion) + "\n";

    Writer body;
    if (!canonical)
        body.putStr("id", spec.id);
    body.putStr("governor", spec.governor);
    // Parameters feed the governor's constructor, so they are part
    // of the canonical (hashed) form, order included.
    body.putU64("governor_params", spec.governorParams.size());
    for (std::size_t i = 0; i < spec.governorParams.size(); ++i) {
        const auto &kv = spec.governorParams[i];
        body.putStr("governor_param." + std::to_string(i),
                    kv.first + "=" + kv.second);
    }
    body.putU64("seed", spec.seed);
    body.putU64("warmup", spec.warmup);
    body.putU64("window", spec.window);
    body.putBool("hd_panel", spec.hdPanel);
    body.putBool("camera", spec.camera);
    body.putNum("pinned_core_freq", spec.pinnedCoreFreq);
    body.putBool("pinned_unoptimized_mrc", spec.pinnedUnoptimizedMrc);
    body.putBool("pinned_op_point", spec.pinnedOpPoint.has_value());
    if (spec.pinnedOpPoint) {
        const soc::OperatingPoint &op = *spec.pinnedOpPoint;
        // The point's name is presentation, like the cell id:
        // OperatingPoint::operator== ignores it, so the canonical
        // (hashed) form must too or equal specs would get
        // different cache keys.
        if (!canonical)
            body.putStr("pinned_op.name", op.name);
        body.putU64("pinned_op.dram_bin", op.dramBin);
        body.putNum("pinned_op.fabric_freq", op.fabricFreq);
        body.putNum("pinned_op.v_sa", op.vSa);
        body.putNum("pinned_op.v_io", op.vIo);
        body.putU64("pinned_op.mrc_trained_bin", op.mrcTrainedBin);
    }

    const soc::SocConfig &cfg = spec.soc;
    body.putStr("soc.name", cfg.name);
    body.putU64("soc.cores", cfg.cores);
    body.putU64("soc.threads_per_core", cfg.threadsPerCore);
    body.putNum("soc.core_base_freq", cfg.coreBaseFreq);
    body.putNum("soc.gfx_base_freq", cfg.gfxBaseFreq);
    body.putU64("soc.llc_bytes", cfg.llcBytes);
    body.putNum("soc.tdp", cfg.tdp);
    body.putNum("soc.pbm_reserve", cfg.pbmReserve);
    body.putNum("soc.budget_utilization", cfg.budgetUtilization);
    body.putNum("soc.v_sa_boot", cfg.vSaBoot);
    body.putNum("soc.v_io_boot", cfg.vIoBoot);
    body.putNum("soc.vddq", cfg.vddq);
    body.putNum("soc.vr_slew_rate", cfg.vrSlewRate);
    body.putNum("soc.platform_floor", cfg.platformFloor);
    body.putNum("soc.core_cdyn", cfg.coreCdyn);
    body.putNum("soc.core_leak_k", cfg.coreLeakK);
    body.putNum("soc.gfx_cdyn", cfg.gfxCdyn);
    body.putNum("soc.gfx_leak_k", cfg.gfxLeakK);
    body.putNum("soc.temperature", cfg.temperature);
    body.putU64("soc.pstate_steps", cfg.pstateSteps);
    body.putNum("soc.fabric_freq_high", cfg.fabricFreqHigh);
    body.putNum("soc.fabric_freq_low", cfg.fabricFreqLow);
    body.putU64("soc.evaluation_interval", cfg.evaluationInterval);
    body.putU64("soc.sample_interval", cfg.sampleInterval);
    body.putU64("soc.step_interval", cfg.stepInterval);

    const dram::DramSpec &dspec = cfg.dramSpec;
    body.put("soc.dram.type", dram::dramTypeName(dspec.type()));
    std::string bins;
    for (std::size_t i = 0; i < dspec.numBins(); ++i) {
        if (i)
            bins += " ";
        bins += num(dspec.bin(i).dataRateMTs);
    }
    body.put("soc.dram.bins", bins);
    body.putU64("soc.dram.channels", dspec.channels());
    body.putU64("soc.dram.bytes_per_channel", dspec.bytesPerChannel());
    body.putU64("soc.dram.ranks_per_channel", dspec.ranksPerChannel());
    body.putU64("soc.dram.devices_per_rank", dspec.devicesPerRank());
    body.putU64("soc.dram.banks", dspec.banks());

    writeProfile(body, "workload.", "phase.", spec.workload);

    const workloads::Scenario &sc = spec.scenario;
    body.putU64("scenario.layers", sc.layers.size());
    for (std::size_t i = 0; i < sc.layers.size(); ++i) {
        const workloads::ScenarioLayer &layer = sc.layers[i];
        const std::string pre =
            "scenario.layer." + std::to_string(i) + ".";
        body.putU64(pre + "start", layer.start);
        body.putU64(pre + "stop", layer.stop);
        writeProfile(body, pre, pre + "phase.", layer.profile);
    }
    body.putU64("scenario.actions", sc.actions.size());
    for (std::size_t i = 0; i < sc.actions.size(); ++i) {
        const workloads::ScenarioAction &a = sc.actions[i];
        body.put("scenario.action." + std::to_string(i),
                 std::to_string(a.at) + " " +
                     workloads::scenarioActionName(a.kind) + " " +
                     num(a.value));
    }

    if (!canonical) {
        body.putU64("labels", spec.labels.size());
        for (std::size_t i = 0; i < spec.labels.size(); ++i) {
            const std::string pre = "label." + std::to_string(i) + ".";
            body.putStr(pre + "key", spec.labels[i].first);
            body.putStr(pre + "value", spec.labels[i].second);
        }
    }

    return doc + body.take();
}

} // anonymous namespace

std::uint64_t
fnv1a64(std::string_view data)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (const char c : data) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

bool
isSerializableSpec(const ExperimentSpec &spec)
{
    return !spec.governorFactory && spec.borrowedPolicy == nullptr;
}

std::string
serializeSpec(const ExperimentSpec &spec)
{
    return serializeImpl(spec, /*canonical=*/false);
}

std::string
canonicalSpec(const ExperimentSpec &spec)
{
    return serializeImpl(spec, /*canonical=*/true);
}

std::string
specKey(const ExperimentSpec &spec)
{
    return specKeyForCanonical(canonicalSpec(spec));
}

std::string
specKeyForCanonical(std::string_view canonical)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(canonical)));
    return buf;
}

ExperimentSpec
parseSpec(const std::string &text)
{
    Reader r(text);
    ExperimentSpec spec;

    spec.id = r.getStr("id");
    spec.governor = r.getStr("governor");
    const std::size_t n_params = r.getSize("governor_params");
    for (std::size_t i = 0; i < n_params; ++i) {
        const std::string kv =
            r.getStr("governor_param." + std::to_string(i));
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0)
            throw std::invalid_argument(
                "spec codec: malformed governor parameter \"" + kv +
                "\"");
        spec.governorParams.emplace_back(kv.substr(0, eq),
                                         kv.substr(eq + 1));
    }
    spec.seed = r.getU64("seed");
    spec.warmup = r.getU64("warmup");
    spec.window = r.getU64("window");
    spec.hdPanel = r.getBool("hd_panel");
    spec.camera = r.getBool("camera");
    spec.pinnedCoreFreq = r.getNum("pinned_core_freq");
    spec.pinnedUnoptimizedMrc = r.getBool("pinned_unoptimized_mrc");
    if (r.getBool("pinned_op_point")) {
        soc::OperatingPoint op;
        op.name = r.getStr("pinned_op.name");
        op.dramBin = r.getSize("pinned_op.dram_bin");
        op.fabricFreq = r.getNum("pinned_op.fabric_freq");
        op.vSa = r.getNum("pinned_op.v_sa");
        op.vIo = r.getNum("pinned_op.v_io");
        op.mrcTrainedBin = r.getSize("pinned_op.mrc_trained_bin");
        spec.pinnedOpPoint = op;
    }

    soc::SocConfig &cfg = spec.soc;
    cfg.name = r.getStr("soc.name");
    cfg.cores = r.getSize("soc.cores");
    cfg.threadsPerCore = r.getSize("soc.threads_per_core");
    cfg.coreBaseFreq = r.getNum("soc.core_base_freq");
    cfg.gfxBaseFreq = r.getNum("soc.gfx_base_freq");
    cfg.llcBytes = r.getSize("soc.llc_bytes");
    cfg.tdp = r.getNum("soc.tdp");
    cfg.pbmReserve = r.getNum("soc.pbm_reserve");
    cfg.budgetUtilization = r.getNum("soc.budget_utilization");
    cfg.vSaBoot = r.getNum("soc.v_sa_boot");
    cfg.vIoBoot = r.getNum("soc.v_io_boot");
    cfg.vddq = r.getNum("soc.vddq");
    cfg.vrSlewRate = r.getNum("soc.vr_slew_rate");
    cfg.platformFloor = r.getNum("soc.platform_floor");
    cfg.coreCdyn = r.getNum("soc.core_cdyn");
    cfg.coreLeakK = r.getNum("soc.core_leak_k");
    cfg.gfxCdyn = r.getNum("soc.gfx_cdyn");
    cfg.gfxLeakK = r.getNum("soc.gfx_leak_k");
    cfg.temperature = r.getNum("soc.temperature");
    cfg.pstateSteps = r.getSize("soc.pstate_steps");
    cfg.fabricFreqHigh = r.getNum("soc.fabric_freq_high");
    cfg.fabricFreqLow = r.getNum("soc.fabric_freq_low");
    cfg.evaluationInterval = r.getU64("soc.evaluation_interval");
    cfg.sampleInterval = r.getU64("soc.sample_interval");
    cfg.stepInterval = r.getU64("soc.step_interval");

    const dram::DramType dtype =
        dramTypeFromToken(r.get("soc.dram.type"));
    const std::vector<double> rates =
        r.getNumList("soc.dram.bins", 0);
    const std::size_t channels = r.getSize("soc.dram.channels");
    const std::size_t bytes_per_channel =
        r.getSize("soc.dram.bytes_per_channel");
    const std::size_t ranks = r.getSize("soc.dram.ranks_per_channel");
    const std::size_t devices = r.getSize("soc.dram.devices_per_rank");
    const std::size_t banks = r.getSize("soc.dram.banks");
    // DramSpec's own checks are fatal (process exit); mirror them as
    // throws so a corrupt document cannot take the process down.
    if (rates.empty() || channels == 0 || bytes_per_channel == 0 ||
        ranks == 0 || devices == 0 || banks == 0) {
        throw std::invalid_argument(
            "spec codec: degenerate DRAM geometry");
    }
    std::vector<dram::FreqBin> bins;
    for (const double rate : rates)
        bins.push_back(dram::FreqBin{rate});
    cfg.dramSpec = dram::DramSpec(dtype, std::move(bins), channels,
                                  bytes_per_channel, ranks, devices,
                                  banks);

    spec.workload =
        readProfile(r, "workload.", "phase.", /*allow_empty=*/true);

    const std::size_t n_layers = r.getSize("scenario.layers");
    for (std::size_t i = 0; i < n_layers; ++i) {
        const std::string pre =
            "scenario.layer." + std::to_string(i) + ".";
        workloads::ScenarioLayer layer;
        layer.start = r.getU64(pre + "start");
        layer.stop = r.getU64(pre + "stop");
        layer.profile =
            readProfile(r, pre, pre + "phase.", /*allow_empty=*/false);
        spec.scenario.layers.push_back(std::move(layer));
    }
    const std::size_t n_actions = r.getSize("scenario.actions");
    for (std::size_t i = 0; i < n_actions; ++i) {
        std::istringstream is(
            r.get("scenario.action." + std::to_string(i)));
        std::string at_s, kind_s, value_s, extra;
        if (!(is >> at_s >> kind_s >> value_s) || (is >> extra))
            throw std::invalid_argument(
                "spec codec: malformed scenario action");
        workloads::ScenarioAction a;
        if (at_s[0] < '0' || at_s[0] > '9')
            throw std::invalid_argument(
                "spec codec: bad scenario action time");
        char *end = nullptr;
        a.at = std::strtoull(at_s.c_str(), &end, 10);
        if (end != at_s.c_str() + at_s.size())
            throw std::invalid_argument(
                "spec codec: bad scenario action time");
        a.kind = scenarioActionFromToken(kind_s);
        a.value = std::strtod(value_s.c_str(), &end);
        if (end != value_s.c_str() + value_s.size())
            throw std::invalid_argument(
                "spec codec: bad scenario action value");
        spec.scenario.actions.push_back(a);
    }
    // validateScenario throws on the values the runtime would treat
    // as fatal (unsorted actions, non-positive TDP steps, inverted
    // layer windows), so a corrupt cache entry misses instead of
    // taking the process down.
    workloads::validateScenario(spec.scenario);

    const std::size_t n_labels = r.getSize("labels");
    for (std::size_t i = 0; i < n_labels; ++i) {
        const std::string pre = "label." + std::to_string(i) + ".";
        spec.labels.emplace_back(r.getStr(pre + "key"),
                                 r.getStr(pre + "value"));
    }

    r.finish();
    return spec;
}

} // namespace exp
} // namespace sysscale
