#include "exp/runner.hh"

#include <atomic>
#include <mutex>
#include <thread>

#include "exp/cache.hh"

namespace sysscale {
namespace exp {

ExperimentRunner::ExperimentRunner(RunnerOptions opts)
    : opts_(std::move(opts))
{}

std::size_t
ExperimentRunner::jobsFor(std::size_t cells) const
{
    std::size_t jobs = opts_.jobs;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    if (jobs > cells)
        jobs = cells;
    return jobs == 0 ? 1 : jobs;
}

std::vector<RunResult>
ExperimentRunner::run(const std::vector<ExperimentSpec> &specs) const
{
    std::vector<RunResult> results(specs.size());
    if (specs.empty())
        return results;

    // Serve cache hits up front, in spec order; only the remaining
    // cells are dispatched to workers.
    std::vector<std::size_t> pending;
    pending.reserve(specs.size());
    std::size_t prefilled = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (opts_.cache &&
            opts_.cache->lookup(specs[i], results[i])) {
            ++prefilled;
            if (opts_.onResult)
                opts_.onResult(results[i], prefilled, specs.size());
        } else {
            pending.push_back(i);
        }
    }
    if (pending.empty())
        return results;

    const std::size_t jobs = jobsFor(pending.size());
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{prefilled};
    std::mutex progress_mutex;

    auto worker = [&] {
        for (;;) {
            const std::size_t slot =
                next.fetch_add(1, std::memory_order_relaxed);
            if (slot >= pending.size())
                return;
            const std::size_t i = pending[slot];

            const ExperimentSpec &spec = specs[i];
            if (spec.borrowedPolicy && jobs > 1) {
                RunResult &res = results[i];
                res.id = spec.id;
                res.workload = spec.workload.name();
                res.labels = spec.labels;
                res.ok = false;
                res.error = "borrowed policy requires jobs == 1";
            } else {
                results[i] = runCell(spec, opts_.cell);
                if (opts_.cache)
                    opts_.cache->store(spec, results[i]);
            }

            const std::size_t finished =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (opts_.onResult) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                opts_.onResult(results[i], finished, specs.size());
            }
        }
    };

    if (jobs == 1) {
        worker();
        return results;
    }

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t t = 0; t < jobs; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return results;
}

} // namespace exp
} // namespace sysscale
