#include "exp/experiment.hh"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/governor_registry.hh"
#include "core/governors.hh"
#include "core/transition_flow.hh"
#include "exp/spec_codec.hh"
#include "io/display.hh"
#include "io/isp.hh"
#include "obs/trace.hh"
#include "sim/sim_object.hh"
#include "sim/snapshot.hh"
#include "workloads/composite.hh"

namespace sysscale {
namespace exp {

namespace {

/** PMU policy that accumulates window-averaged counters. */
class CollectPolicy : public soc::PmuPolicy
{
  public:
    const char *name() const override { return "collect"; }

    void
    evaluate(soc::Soc &soc, const soc::CounterSnapshot &avg) override
    {
        (void)soc;
        for (std::size_t i = 0; i < soc::kNumCounters; ++i)
            sum_.values[i] += avg.values[i];
        ++windows_;
    }

    soc::CounterSnapshot
    average() const
    {
        soc::CounterSnapshot out;
        if (windows_ == 0)
            return out;
        for (std::size_t i = 0; i < soc::kNumCounters; ++i)
            out.values[i] =
                sum_.values[i] / static_cast<double>(windows_);
        return out;
    }

    void
    saveState(SnapshotWriter &w) const override
    {
        for (std::size_t i = 0; i < soc::kNumCounters; ++i)
            w.putDouble("sum" + std::to_string(i), sum_.values[i]);
        w.putU64("windows", windows_);
    }

    void
    loadState(SnapshotReader &r) override
    {
        for (std::size_t i = 0; i < soc::kNumCounters; ++i)
            sum_.values[i] = r.getDouble("sum" + std::to_string(i));
        windows_ = r.getU64("windows");
    }

  private:
    soc::CounterSnapshot sum_;
    std::size_t windows_ = 0;
};

/** Workload wrapper that overrides the OS core-frequency request. */
class PinnedFreqAgent : public soc::WorkloadAgent
{
  public:
    PinnedFreqAgent(soc::WorkloadAgent &inner, Hertz freq)
        : inner_(inner), freq_(freq)
    {}

    void
    demandAt(Tick now, soc::IntervalDemand &demand) override
    {
        inner_.demandAt(now, demand);
        if (freq_ > 0.0)
            demand.coreFreqRequest = freq_;
    }

    bool
    finished(Tick now) const override
    {
        return inner_.finished(now);
    }

    Tick
    demandHorizon(Tick now) override
    {
        // The override is time-invariant, so the inner horizon holds.
        return inner_.demandHorizon(now);
    }

  private:
    soc::WorkloadAgent &inner_;
    Hertz freq_;
};

/**
 * Trace file name for @p spec: its content key when it has one, else
 * the cell id with filesystem-hostile characters replaced.
 */
std::string
traceFileStem(const ExperimentSpec &spec)
{
    if (isSerializableSpec(spec))
        return specKey(spec);
    std::string stem = spec.id.empty() ? "cell" : spec.id;
    for (char &c : stem) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        if (!ok)
            c = '_';
    }
    return stem;
}

/** @name RunAccumulators codec (the optional "run.baseline"). @{ */

void
saveAccumulators(SnapshotWriter &w,
                 const soc::Soc::RunAccumulators &a)
{
    w.putDouble("instructions", a.instructions);
    w.putDouble("frames", a.frames);
    for (std::size_t i = 0; i < power::kNumRails; ++i)
        w.putDouble("rail" + std::to_string(i), a.rail[i]);
    w.putDouble("lat_int", a.latInt);
    w.putDouble("lat_secs", a.latSecs);
    w.putDouble("bw_int", a.bwInt);
    w.putDouble("freq_int", a.freqInt);
    w.putDouble("low_secs", a.lowSecs);
    w.putDouble("elapsed_secs", a.elapsedSeconds);
    w.putDouble("qos", a.qos);
    w.putDouble("trans", a.trans);
    w.putDouble("stall", a.stall);
}

soc::Soc::RunAccumulators
loadAccumulators(SnapshotReader &r)
{
    soc::Soc::RunAccumulators a;
    a.instructions = r.getDouble("instructions");
    a.frames = r.getDouble("frames");
    for (std::size_t i = 0; i < power::kNumRails; ++i)
        a.rail[i] = r.getDouble("rail" + std::to_string(i));
    a.latInt = r.getDouble("lat_int");
    a.latSecs = r.getDouble("lat_secs");
    a.bwInt = r.getDouble("bw_int");
    a.freqInt = r.getDouble("freq_int");
    a.lowSecs = r.getDouble("low_secs");
    a.elapsedSeconds = r.getDouble("elapsed_secs");
    a.qos = r.getDouble("qos");
    a.trans = r.getDouble("trans");
    a.stall = r.getDouble("stall");
    return a;
}
/** @} */

/**
 * Serialize the full simulator state of a live cell: the pending
 * event queue in exact (tick, priority, seq) order, every SimObject's
 * private state (scoped under its path), the whole stats hierarchy,
 * the root RNG stream, the installed PMU policy, the trace buffer
 * when one is attached, and the measurement-window baseline sample
 * once the run has crossed warmup.
 */
void
encodeCellState(SnapshotWriter &w, Simulator &sim,
                const soc::PmuPolicy &policy,
                const obs::TraceSink *sink,
                const std::optional<soc::Soc::RunAccumulators>
                    &baseline)
{
    w.push("events");
    const std::vector<EventQueue::SavedEvent> events =
        sim.eventq().saveEvents();
    w.putU64("count", events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        w.push("e" + std::to_string(i));
        w.putString("name", events[i].name);
        w.putU64("when", events[i].when);
        w.putU64("priority",
                 static_cast<std::uint64_t>(events[i].priority));
        w.pop();
    }
    w.pop();

    w.push("objects");
    for (const SimObject *o : sim.objects()) {
        w.push(o->path());
        o->saveState(w);
        w.pop();
    }
    w.pop();

    w.push("stats");
    sim.statsRoot().saveStats(w);
    w.pop();

    w.push("rng");
    const std::array<std::uint64_t, 4> rng = sim.rootRng().saveState();
    for (std::size_t i = 0; i < rng.size(); ++i)
        w.putU64("s" + std::to_string(i), rng[i]);
    w.pop();

    w.push("policy");
    policy.saveState(w);
    w.pop();

    if (sink != nullptr) {
        w.push("obs");
        sink->saveState(w);
        w.pop();
    }

    if (baseline) {
        w.push("run.baseline");
        saveAccumulators(w, *baseline);
        w.pop();
    }
}

/**
 * Restore a freshly constructed cell to the snapshot's instant. The
 * caller has built the cell exactly as runCell would; this starts
 * the components (so their startup hooks register the same named
 * events), rebuilds the event queue from the saved list, and walks
 * the same sections encodeCellState wrote. Any shape mismatch —
 * unknown event name, missing/unconsumed field — throws
 * SnapshotError.
 */
void
restoreCellState(SnapshotReader &r, Simulator &sim,
                 soc::PmuPolicy &policy, obs::TraceSink *sink,
                 std::optional<soc::Soc::RunAccumulators> &baseline)
{
    // Harvest the startup-scheduled events: every event that can be
    // live mid-run is a named member some component schedules at
    // startup, so the harvest is a superset of the saved list.
    sim.startAll();
    std::map<std::string, Event *> by_name;
    for (Event *ev : sim.eventq().scheduledEvents())
        by_name[ev->name()] = ev;

    sim.eventq().clearScheduled();
    sim.eventq().restoreNow(r.tick());

    r.push("events");
    const std::uint64_t count = r.getU64("count");
    std::set<std::string> used;
    for (std::uint64_t i = 0; i < count; ++i) {
        r.push("e" + std::to_string(i));
        const std::string name = r.getString("name");
        const Tick when = r.getU64("when");
        const int priority = static_cast<int>(r.getU64("priority"));
        const auto it = by_name.find(name);
        if (it == by_name.end())
            throw SnapshotError(
                "snapshot schedules unknown event \"" + name + "\"");
        if (!used.insert(name).second)
            throw SnapshotError(
                "snapshot schedules event \"" + name + "\" twice");
        if (it->second->priority() != priority)
            throw SnapshotError(
                "event \"" + name + "\" priority mismatch");
        sim.eventq().schedule(it->second, when);
        r.pop();
    }
    r.pop();

    r.push("objects");
    for (SimObject *o : sim.objects()) {
        r.push(o->path());
        o->loadState(r);
        r.pop();
    }
    r.pop();

    r.push("stats");
    sim.statsRoot().loadStats(r);
    r.pop();

    r.push("rng");
    std::array<std::uint64_t, 4> rng{};
    for (std::size_t i = 0; i < rng.size(); ++i)
        rng[i] = r.getU64("s" + std::to_string(i));
    sim.rootRng().loadState(rng);
    r.pop();

    r.push("policy");
    policy.loadState(r);
    r.pop();

    if (r.has("obs.dropped")) {
        if (sink != nullptr) {
            r.push("obs");
            sink->loadState(r);
            r.pop();
        } else {
            // Saved with tracing, restored without: drop the buffer.
            r.skipScope("obs");
        }
    }

    if (r.has("run.baseline.instructions")) {
        r.push("run.baseline");
        baseline = loadAccumulators(r);
        r.pop();
    }
}

} // anonymous namespace

const std::vector<std::string> &
governorNames()
{
    // The core registry, plus the policy-less "collect" sentinel.
    static const std::vector<std::string> names = [] {
        std::vector<std::string> n = core::governorNames();
        n.push_back("collect");
        return n;
    }();
    return names;
}

bool
isGovernorName(const std::string &name)
{
    return name.empty() || name == "collect" ||
           core::isRegisteredGovernor(name);
}

GovernorFactory
governorFactory(const std::string &name, const GovernorParams &params)
{
    using Policy = std::unique_ptr<soc::PmuPolicy>;
    if (name.empty() || name == "collect") {
        if (!params.empty()) {
            throw std::invalid_argument(
                "governor \"collect\" takes no parameters");
        }
        return [] { return Policy(); };
    }
    // Construct once eagerly: makeGovernor validates both the name
    // (enumerating the registry on a miss) and the parameters, so a
    // bad --governors token dies here, not on a sweep worker.
    core::makeGovernor(name, params);
    return [name, params] {
        return Policy(new core::GovernorHost(
            core::makeGovernor(name, params)));
    };
}

GovernorToken
parseGovernorToken(const std::string &token)
{
    GovernorToken out;
    std::size_t start = token.find(':');
    out.name = token.substr(0, start);
    while (start != std::string::npos) {
        ++start;
        std::size_t end = token.find(':', start);
        const std::string seg =
            token.substr(start, end == std::string::npos
                                    ? std::string::npos
                                    : end - start);
        const std::size_t eq = seg.find('=');
        if (eq == std::string::npos || eq == 0) {
            throw std::invalid_argument(
                "governor token \"" + token + "\": segment \"" + seg +
                "\" is not key=value");
        }
        out.params.emplace_back(seg.substr(0, eq), seg.substr(eq + 1));
        start = end;
    }
    return out;
}

void
validateSpec(const ExperimentSpec &spec)
{
    if (spec.workload.numPhases() == 0 && spec.scenario.layers.empty())
        throw std::invalid_argument(
            "cell \"" + spec.id + "\": workload has no phases");
    try {
        workloads::validateScenario(spec.scenario);
    } catch (const std::invalid_argument &e) {
        throw std::invalid_argument(
            "cell \"" + spec.id + "\": " + e.what());
    }
    if (spec.window == 0)
        throw std::invalid_argument(
            "cell \"" + spec.id + "\": zero measurement window");
    if (!spec.governorFactory && !spec.borrowedPolicy) {
        // governorFactory() validates both the name (enumerating the
        // registry on a miss) and the parameters.
        try {
            governorFactory(spec.governor, spec.governorParams);
        } catch (const std::invalid_argument &e) {
            throw std::invalid_argument(
                "cell \"" + spec.id + "\": " + e.what());
        }
    }
    // Catchable mirror of every SocConfig::validate() invariant:
    // cfg.validate() is fatal (process exit), which from a worker
    // thread would take the whole grid down instead of producing an
    // ok=false row for just this cell.
    const soc::SocConfig &cfg = spec.soc;
    if (cfg.tdp <= 0.0)
        throw std::invalid_argument(
            "cell \"" + spec.id + "\": non-positive TDP");
    if (cfg.cores == 0 || cfg.threadsPerCore == 0)
        throw std::invalid_argument(
            "cell \"" + spec.id + "\": zero cores/threads");
    if (cfg.pbmReserve < 0.0 || cfg.pbmReserve >= cfg.tdp)
        throw std::invalid_argument(
            "cell \"" + spec.id + "\": PBM reserve outside [0, TDP)");
    if (cfg.vSaBoot <= 0.0 || cfg.vIoBoot <= 0.0 || cfg.vddq <= 0.0)
        throw std::invalid_argument(
            "cell \"" + spec.id + "\": non-positive rail voltage");
    if (cfg.fabricFreqLow > cfg.fabricFreqHigh)
        throw std::invalid_argument(
            "cell \"" + spec.id +
            "\": fabric low clock above high clock");
    if (cfg.sampleInterval == 0 || cfg.evaluationInterval == 0 ||
        cfg.stepInterval == 0) {
        throw std::invalid_argument(
            "cell \"" + spec.id + "\": zero PM cadence interval");
    }
    if (cfg.sampleInterval % cfg.stepInterval != 0 ||
        cfg.evaluationInterval % cfg.sampleInterval != 0) {
        throw std::invalid_argument(
            "cell \"" + spec.id + "\": PM cadence intervals are not "
            "multiples of each other");
    }
    if (cfg.budgetUtilization <= 0.0 || cfg.budgetUtilization > 1.0)
        throw std::invalid_argument(
            "cell \"" + spec.id +
            "\": budget utilization out of (0,1]");

    // Peak concurrent hardware threads: the composite concatenates
    // the base workload's thread work with every layer active at
    // the same instant, and the CPU model asserts (process-fatal)
    // when that exceeds cores x threads — which from a sweep worker
    // would crash the daemon and crash-loop the reclaimed cell
    // across the whole fleet. Reject the cell here instead, using
    // each profile's worst phase at every layer arrival inside the
    // simulated window (a layer arriving after warmup + window
    // never materializes and cannot overflow). The base workload
    // alone is checked too — a too-wide profile is just as fatal
    // without any scenario.
    {
        const std::size_t capacity = cfg.cores * cfg.threadsPerCore;
        const Tick run_end = spec.warmup + spec.window;
        auto maxThreads =
            [](const workloads::WorkloadProfile &profile) {
                std::size_t m = 0;
                for (const workloads::Phase &p : profile.phases())
                    m = std::max(m, p.activeThreads);
                return m;
            };
        std::vector<Tick> edges{0};
        for (const workloads::ScenarioLayer &layer :
             spec.scenario.layers) {
            if (layer.start < run_end)
                edges.push_back(layer.start);
        }
        std::size_t peak = 0;
        for (const Tick t : edges) {
            std::size_t at = maxThreads(spec.workload);
            for (const workloads::ScenarioLayer &layer :
                 spec.scenario.layers) {
                if (layer.start <= t &&
                    (layer.stop == 0 || t < layer.stop))
                    at += maxThreads(layer.profile);
            }
            peak = std::max(peak, at);
        }
        if (peak > capacity) {
            throw std::invalid_argument(
                "cell \"" + spec.id + "\": workload plus scenario "
                "layers peak at " + std::to_string(peak) +
                " concurrent threads, above the " +
                std::to_string(capacity) + " the SoC has");
        }
    }
}

std::string
snapshotSpecKey(const ExperimentSpec &spec)
{
    return traceFileStem(spec);
}

namespace {

/**
 * The throwing core of runCellSlice: build the cell exactly as
 * runCell always has, optionally restore the snapshot at t0, run to
 * t1, optionally publish a snapshot, and produce the cell outputs
 * when t1 is the end of the run. @p use_snap false ignores inSnap
 * (the degrade-to-cache-miss retry path).
 */
void
executeSlice(const ExperimentSpec &spec, const SliceOptions &sopts,
             bool use_snap, RunResult &res)
{
    validateSpec(spec);

    const Tick total = spec.warmup + spec.window;
    const Tick t1 = sopts.t1 == 0 ? total : sopts.t1;
    if (t1 > total)
        throw std::invalid_argument(
            "cell \"" + spec.id + "\": slice ends past the run");
    if (sopts.t0 >= t1)
        throw std::invalid_argument(
            "cell \"" + spec.id + "\": empty slice");
    if (sopts.t0 > 0 && sopts.inSnap.empty())
        throw std::invalid_argument(
            "cell \"" + spec.id +
            "\": slice starts mid-run without an input snapshot");

    std::unique_ptr<soc::PmuPolicy> owned;
    soc::PmuPolicy *policy = spec.borrowedPolicy;
    if (!policy) {
        const GovernorFactory factory =
            spec.governorFactory
                ? spec.governorFactory
                : governorFactory(spec.governor, spec.governorParams);
        owned = factory();
        policy = owned.get();
        // Stateful governors (adaptive's learned thresholds)
        // must not leak across cells: every factory-built policy
        // must be a never-installed instance. Debug builds only.
        assert(!policy || !policy->everInstalled());
    }

    Simulator sim(spec.seed);

    // The sink must be installed before the Soc is built so
    // construction-time trace sites (the boot op-point counters)
    // land in the file. One sink per cell, stamped only with sim
    // clock, written once below — which is what makes traces
    // byte-identical across --jobs counts and skip-ahead modes.
    obs::TraceSink sink;
    const bool tracing = !sopts.traceDir.empty();
    if (tracing)
        sim.setTraceSink(&sink);

    soc::Soc chip(sim, spec.soc);
    if (spec.hdPanel)
        chip.display().attachPanel(0, io::kDefaultHdPanel);
    if (spec.camera)
        chip.isp().startCamera(io::CameraConfig{});

    // Scenario-less cells bind the profile agent directly (the
    // single-workload fast path benches rely on); scenarios
    // overlay their layers through a CompositeAgent and replay
    // timed SoC mutations through a ScenarioScript.
    std::unique_ptr<workloads::ProfileAgent> base;
    if (spec.workload.numPhases() > 0)
        base.reset(new workloads::ProfileAgent(spec.workload));

    workloads::CompositeAgent composite;
    std::vector<std::unique_ptr<workloads::ProfileAgent>> layers;
    soc::WorkloadAgent *root = base.get();
    if (!spec.scenario.layers.empty()) {
        if (base)
            composite.addMember(*base);
        for (const workloads::ScenarioLayer &layer :
             spec.scenario.layers) {
            layers.emplace_back(
                new workloads::ProfileAgent(layer.profile));
            composite.addMember(*layers.back(), layer.start,
                                layer.stop);
        }
        root = &composite;
    }

    std::unique_ptr<workloads::ScenarioScript> script;
    if (!spec.scenario.actions.empty()) {
        script.reset(new workloads::ScenarioScript(
            sim, chip, spec.scenario.actions));
    }

    PinnedFreqAgent pinned(*root, spec.pinnedCoreFreq);
    chip.setWorkload(&pinned);

    CollectPolicy collector;
    soc::PmuPolicy *active = policy ? policy : &collector;
    chip.pmu().setPolicy(active);
    res.governor = active->name();

    if (spec.pinnedOpPoint) {
        core::FlowOptions fopts;
        fopts.useOptimizedMrc = !spec.pinnedUnoptimizedMrc;
        core::TransitionFlow flow(chip, fopts);
        soc::OperatingPoint target = *spec.pinnedOpPoint;
        if (spec.pinnedUnoptimizedMrc)
            target.mrcTrainedBin = chip.opPoints().high().dramBin;
        flow.execute(target);
        chip.setComputeBudget(chip.pbm().computeBudget(
            chip.ioMemBudget(chip.opPoints().high()), 0.0));
    }

    const std::string key = snapshotSpecKey(spec);
    std::optional<soc::Soc::RunAccumulators> baseline;
    Tick pos = 0;
    if (use_snap && sopts.t0 > 0) {
        const std::string text = readSnapshotFile(sopts.inSnap);
        SnapshotReader reader(text);
        if (reader.specKey() != key) {
            throw SnapshotError(
                "snapshot " + sopts.inSnap + " belongs to spec " +
                reader.specKey() + ", not " + key);
        }
        if (reader.tick() != sopts.t0) {
            throw SnapshotError(
                "snapshot " + sopts.inSnap + " is at tick " +
                std::to_string(reader.tick()) + ", not slice start " +
                std::to_string(sopts.t0));
        }
        restoreCellState(reader, sim, *active,
                         tracing ? &sink : nullptr, baseline);
        reader.finish();
        pos = sopts.t0;
    }

    // Cross the warmup boundary exactly as the unsliced path does:
    // run to it, then sample the measurement-window baseline. The
    // baseline rides subsequent snapshots so the final slice
    // differences the identical pair of samples.
    if (!baseline && t1 >= spec.warmup && pos <= spec.warmup) {
        if (spec.warmup > pos)
            chip.run(spec.warmup - pos);
        pos = spec.warmup;
        baseline = chip.sampleAccumulators();
    }
    if (t1 > pos)
        chip.run(t1 - pos);

    if (!sopts.outSnap.empty()) {
        // Publish before stats finalization: finalizeStats() closes
        // the time-averaged stats, which must not leak into an image
        // a continuation resumes from.
        SnapshotWriter writer(key, sim.now());
        encodeCellState(writer, sim, *active,
                        tracing ? &sink : nullptr, baseline);
        writeSnapshotFile(sopts.outSnap, writer.str());
    }

    if (t1 == total) {
        res.metrics = soc::Soc::metricsBetween(
            *baseline, chip.sampleAccumulators(),
            secondsFromTicks(spec.window));
        res.counters = collector.average();

        // Per-cell stats export: close the time-weighted residency
        // stats and dump the whole hierarchy. Rides the result (and
        // the cache) without touching the CSV/JSON report surfaces.
        chip.finalizeStats(sim.now());
        std::ostringstream stats;
        sim.statsRoot().dumpStats(stats);
        res.statsDump = stats.str();

        if (tracing) {
            const std::string path = sopts.traceDir + "/" +
                                     traceFileStem(spec) +
                                     ".trace.json";
            std::ofstream os(path,
                             std::ios::binary | std::ios::trunc);
            if (!os) {
                throw std::runtime_error(
                    "cannot write trace file " + path);
            }
            sink.writeJson(os);
        }
    }
    res.ok = true;
}

} // anonymous namespace

RunResult
runCell(const ExperimentSpec &spec)
{
    return runCell(spec, RunCellOptions{});
}

RunResult
runCell(const ExperimentSpec &spec, const RunCellOptions &opts)
{
    SliceOptions sopts;
    sopts.traceDir = opts.traceDir;
    return runCellSlice(spec, sopts);
}

RunResult
runCellSlice(const ExperimentSpec &spec, const SliceOptions &sopts)
{
    RunResult res;
    res.id = spec.id;
    res.workload = spec.workload.name();
    res.labels = spec.labels;

    // lint:allow nondeterminism -- hostSeconds is measured host
    // timing, recorded as diagnostic metadata and replayed
    // byte-identically from the cache
    const auto host_start = std::chrono::steady_clock::now();
    try {
        try {
            executeSlice(spec, sopts, /*use_snap=*/true, res);
        } catch (const SnapshotError &e) {
            // Degrade to a cache miss: a bad input snapshot (absent,
            // truncated, corrupt, stale version, wrong spec) means
            // re-simulating the slice's prefix from tick 0, never a
            // failed cell. The retry rebuilds the whole cell — a
            // restore aborted midway leaves partial state behind.
            (void)e;
            RunResult fresh;
            fresh.id = res.id;
            fresh.workload = res.workload;
            fresh.labels = res.labels;
            res = fresh;
            executeSlice(spec, sopts, /*use_snap=*/false, res);
        }
        res.ok = true;
    } catch (const std::exception &e) {
        res.ok = false;
        res.error = e.what();
    } catch (...) {
        res.ok = false;
        res.error = "unknown exception";
    }
    res.hostSeconds =
        std::chrono::duration<double>(
            // lint:allow nondeterminism -- hostSeconds measurement
            std::chrono::steady_clock::now() - host_start)
            .count();
    return res;
}

std::vector<ExperimentSpec>
expandGrid(const GridSpec &grid)
{
    // The scenario axis: explicit entries expand like any other
    // dimension (every cell suffixed and labeled, "none" included);
    // without them the single grid.scenario applies to every cell
    // and ids/labels stay exactly as before — suffixed only when
    // scenarioName is set, untouched for scenario-less grids.
    const bool scenario_axis = !grid.scenarios.empty();
    std::vector<GridSpec::NamedScenario> axis;
    if (scenario_axis)
        axis = grid.scenarios;
    else
        axis.push_back({grid.scenarioName, grid.scenario});

    std::vector<ExperimentSpec> cells;
    cells.reserve(grid.workloads.size() * grid.governors.size() *
                  grid.tdps.size() * grid.seeds.size() * axis.size());

    for (const auto &w : grid.workloads) {
        for (const auto &gov : grid.governors) {
            // Grid governors are sweep-console tokens: the base name
            // plus parameters land in the spec, while ids and the
            // "governor" label keep the full token so parameterized
            // variants stay distinguishable in aggregation. Plain
            // names (no parameters) expand exactly as before.
            const GovernorToken token = parseGovernorToken(gov);
            for (const Watt tdp : grid.tdps) {
                for (const std::uint64_t seed : grid.seeds) {
                    for (const auto &sc : axis) {
                        ExperimentSpec cell;
                        cell.soc = grid.base;
                        cell.soc.tdp = tdp;
                        cell.workload = w;
                        cell.scenario = sc.scenario;
                        cell.governor = token.name;
                        cell.governorParams = token.params;
                        cell.seed = seed;
                        cell.warmup = grid.warmup;
                        cell.window = grid.window;
                        cell.hdPanel = grid.hdPanel;
                        cell.camera = grid.camera;

                        char tdp_s[32];
                        std::snprintf(tdp_s, sizeof(tdp_s), "%.3gW",
                                      tdp);
                        cell.id = w.name() + "/" + gov + "/" + tdp_s +
                                  "/seed" + std::to_string(seed);
                        cell.labels = {
                            {"workload", w.name()},
                            {"governor", gov},
                            {"tdp", tdp_s},
                            {"seed", std::to_string(seed)},
                        };
                        if (scenario_axis || !sc.name.empty()) {
                            cell.id += "/" + sc.name;
                            cell.labels.emplace_back("scenario",
                                                     sc.name);
                        }
                        cells.push_back(std::move(cell));
                    }
                }
            }
        }
    }
    return cells;
}

} // namespace exp
} // namespace sysscale
