/**
 * @file
 * Canonical ExperimentSpec serialization and content addressing.
 *
 * serializeSpec() emits a stable, versioned, line-oriented text
 * encoding of everything a cell's simulation depends on — the full
 * SocConfig (including the DRAM population), the workload profile
 * phase by phase, governor name, measurement window, pinning
 * overrides, and RNG seed — plus the presentation-only id and
 * labels. parseSpec() inverts it exactly:
 *
 *     parseSpec(serializeSpec(s)) == s
 *
 * is a hard invariant for every serializable spec (the runtime-local
 * governorFactory / borrowedPolicy hooks are outside the encoding;
 * isSerializableSpec() reports whether a spec uses them).
 *
 * specKey() hashes the *canonical* form — the same encoding with the
 * id and label lines dropped, so renaming or relabeling a cell does
 * not change its identity — with FNV-1a/64 and returns 16 lowercase
 * hex digits. The format version line is part of the hashed text:
 * bumping kSpecFormatVersion invalidates every existing key, which
 * is exactly what a result cache keyed on specKey() needs when the
 * encoding (or the simulation semantics behind any encoded field)
 * changes. See docs/EXPERIMENTS.md for the versioning policy.
 */

#ifndef SYSSCALE_EXP_SPEC_CODEC_HH
#define SYSSCALE_EXP_SPEC_CODEC_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "exp/experiment.hh"

namespace sysscale {
namespace exp {

/**
 * Encoding version. Bump whenever serializeSpec() changes shape OR
 * the meaning of an encoded field changes in the model, so stale
 * cache entries can never alias new cells.
 */
constexpr int kSpecFormatVersion = 6;

/** FNV-1a 64-bit hash (dependency-free content addressing). */
std::uint64_t fnv1a64(std::string_view data);

/**
 * Whether @p spec is fully captured by serializeSpec(): false when
 * it carries a governorFactory or borrowedPolicy, which cannot be
 * encoded (and therefore must never be cached by content).
 */
bool isSerializableSpec(const ExperimentSpec &spec);

/** Versioned text encoding of @p spec (id and labels included). */
std::string serializeSpec(const ExperimentSpec &spec);

/**
 * Canonical encoding: serializeSpec() minus the presentation-only
 * lines (cell id, labels, pinned-op-point name — the fields spec
 * equality ignores too). Two cells with equal canonical text run
 * the identical simulation.
 */
std::string canonicalSpec(const ExperimentSpec &spec);

/**
 * Content key of @p spec: fnv1a64(canonicalSpec(spec)) as 16 lower-
 * case hex digits. Stable across processes, platforms, and runs.
 */
std::string specKey(const ExperimentSpec &spec);

/**
 * specKey() for a canonical text already produced by
 * canonicalSpec() — lets callers that need both the text and the
 * key serialize once.
 */
std::string specKeyForCanonical(std::string_view canonical);

/**
 * Invert serializeSpec(). Throws std::invalid_argument on any
 * malformed input: missing/garbled header, version mismatch,
 * unknown or duplicate keys, unparsable values, or field values a
 * spec cannot hold (e.g. residency fractions that do not sum to 1).
 */
ExperimentSpec parseSpec(const std::string &text);

} // namespace exp
} // namespace sysscale

#endif // SYSSCALE_EXP_SPEC_CODEC_HH
