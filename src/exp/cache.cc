#include "exp/cache.hh"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "exp/report.hh"
#include "exp/spec_codec.hh"
#include "power/dvfs_types.hh"
#include "soc/counters.hh"

namespace sysscale {
namespace exp {

namespace {

/**
 * Minimal JSON reader for the cache file format. Numbers keep their
 * raw token so 64-bit integers and "%.17g" doubles re-parse without
 * precision loss. Throws std::invalid_argument on malformed input;
 * the cache turns any throw into a miss.
 */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::string scalar; //!< Raw number token or decoded string.
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    const JsonValue &
    at(const std::string &key) const
    {
        for (const auto &kv : members) {
            if (kv.first == key)
                return kv.second;
        }
        throw std::invalid_argument("cache json: missing \"" + key +
                                    "\"");
    }

    double
    asDouble() const
    {
        if (kind != Kind::Number)
            throw std::invalid_argument("cache json: not a number");
        char *end = nullptr;
        const double d = std::strtod(scalar.c_str(), &end);
        if (scalar.empty() || end != scalar.c_str() + scalar.size())
            throw std::invalid_argument("cache json: bad double");
        return d;
    }

    std::uint64_t
    asU64() const
    {
        if (kind != Kind::Number)
            throw std::invalid_argument("cache json: not a number");
        // Full-token consumption: "12.9" must be corrupt, not 12.
        if (scalar.empty() || scalar[0] < '0' || scalar[0] > '9')
            throw std::invalid_argument("cache json: bad integer");
        char *end = nullptr;
        const std::uint64_t u =
            std::strtoull(scalar.c_str(), &end, 10);
        if (end != scalar.c_str() + scalar.size())
            throw std::invalid_argument("cache json: bad integer");
        return u;
    }

    const std::string &
    asString() const
    {
        if (kind != Kind::String)
            throw std::invalid_argument("cache json: not a string");
        return scalar;
    }

    bool
    asBool() const
    {
        if (kind != Kind::Bool)
            throw std::invalid_argument("cache json: not a bool");
        return boolean;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipSpace();
        if (pos_ != text_.size())
            throw std::invalid_argument(
                "cache json: trailing content");
        return v;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            throw std::invalid_argument("cache json: truncated");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw std::invalid_argument(
                std::string("cache json: expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        skipSpace();
        const char c = peek();
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't' || c == 'f')
            return boolean();
        if (c == 'n') {
            literal("null");
            return JsonValue{};
        }
        return number();
    }

    JsonValue
    object()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        skipSpace();
        if (consume('}'))
            return v;
        for (;;) {
            skipSpace();
            JsonValue key = string();
            skipSpace();
            expect(':');
            v.members.emplace_back(std::move(key.scalar), value());
            skipSpace();
            if (consume(','))
                continue;
            expect('}');
            return v;
        }
    }

    JsonValue
    array()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        skipSpace();
        if (consume(']'))
            return v;
        for (;;) {
            v.items.push_back(value());
            skipSpace();
            if (consume(','))
                continue;
            expect(']');
            return v;
        }
    }

    JsonValue
    string()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        expect('"');
        for (;;) {
            const char c = peek();
            ++pos_;
            if (c == '"')
                return v;
            if (c != '\\') {
                v.scalar += c;
                continue;
            }
            const char esc = peek();
            ++pos_;
            switch (esc) {
              case '"': v.scalar += '"'; break;
              case '\\': v.scalar += '\\'; break;
              case '/': v.scalar += '/'; break;
              case 'n': v.scalar += '\n'; break;
              case 't': v.scalar += '\t'; break;
              case 'r': v.scalar += '\r'; break;
              case 'b': v.scalar += '\b'; break;
              case 'f': v.scalar += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    throw std::invalid_argument(
                        "cache json: truncated \\u escape");
                const std::string hex = text_.substr(pos_, 4);
                pos_ += 4;
                char *end = nullptr;
                const long code =
                    std::strtol(hex.c_str(), &end, 16);
                if (end != hex.c_str() + 4 || code < 0 || code > 0xff)
                    throw std::invalid_argument(
                        "cache json: unsupported \\u escape");
                v.scalar += static_cast<char>(code);
                break;
              }
              default:
                throw std::invalid_argument(
                    "cache json: unknown escape");
            }
        }
    }

    JsonValue
    boolean()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (peek() == 't') {
            literal("true");
            v.boolean = true;
        } else {
            literal("false");
            v.boolean = false;
        }
        return v;
    }

    JsonValue
    number()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        const std::size_t start = pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '-' || c == '+' ||
                c == '.' || c == 'e' || c == 'E') {
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            throw std::invalid_argument("cache json: bad number");
        v.scalar = text_.substr(start, pos_ - start);
        return v;
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                throw std::invalid_argument(
                    "cache json: bad literal");
            ++pos_;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** Rebuild a RunResult from the "result" object of a cache file. */
RunResult
resultFromJson(const JsonValue &root)
{
    RunResult res;
    res.id = root.at("id").asString();
    res.governor = root.at("governor").asString();
    res.workload = root.at("workload").asString();
    res.ok = root.at("ok").asBool();
    res.error = root.at("error").asString();
    res.hostSeconds = root.at("host_seconds").asDouble();

    const JsonValue &m = root.at("metrics");
    soc::RunMetrics &out = res.metrics;
    out.seconds = m.at("seconds").asDouble();
    out.instructions = m.at("instructions").asDouble();
    out.ips = m.at("ips").asDouble();
    out.frames = m.at("frames").asDouble();
    out.fps = m.at("fps").asDouble();
    out.avgPower = m.at("avg_power_w").asDouble();
    out.energy = m.at("energy_j").asDouble();
    out.edp = m.at("edp").asDouble();
    out.avgMemLatencyNs = m.at("avg_mem_latency_ns").asDouble();
    out.avgMemBandwidth = m.at("avg_mem_bandwidth").asDouble();
    out.avgCoreFreq = m.at("avg_core_freq_hz").asDouble();
    out.qosViolations = m.at("qos_violations").asU64();
    out.transitions = m.at("transitions").asU64();
    out.stallTicks = m.at("stall_ticks").asU64();
    out.lowPointResidency = m.at("low_point_residency").asDouble();

    const JsonValue &rails = m.at("rail_energy_j");
    for (const auto rail : power::kAllRails) {
        out.railEnergy[power::railIndex(rail)] =
            rails.at(std::string(power::railName(rail))).asDouble();
    }

    const JsonValue &counters = root.at("counters");
    for (const auto counter : soc::kAllCounters) {
        res.counters.values[soc::counterIndex(counter)] =
            counters.at(std::string(soc::counterName(counter)))
                .asDouble();
    }

    const JsonValue &labels = root.at("labels");
    for (const auto &kv : labels.members)
        res.labels.emplace_back(kv.first, kv.second.asString());
    return res;
}

/**
 * Optional-member probe. "stats" is written by every format-v6 file
 * and the version gate rejects anything older, but tolerating its
 * absence keeps hand-edited or trimmed caches usable.
 */
const JsonValue *
findMember(const JsonValue &obj, const std::string &key)
{
    for (const auto &kv : obj.members) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

} // anonymous namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec || !std::filesystem::is_directory(dir_)) {
        throw std::runtime_error("ResultCache: cannot create \"" +
                                 dir_ + "\"");
    }
}

bool
ResultCache::cacheable(const ExperimentSpec &spec)
{
    return isSerializableSpec(spec);
}

std::string
ResultCache::pathFor(const ExperimentSpec &spec) const
{
    return dir_ + "/" + specKey(spec) + ".json";
}

bool
ResultCache::lookup(const ExperimentSpec &spec, RunResult &out)
{
    if (!cacheable(spec)) {
        uncacheable_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }

    // One serialization per lookup: key and collision check both
    // derive from this text.
    const std::string canonical = canonicalSpec(spec);
    const std::string key = specKeyForCanonical(canonical);
    const std::string path = dir_ + "/" + key + ".json";
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();

    try {
        const JsonValue doc = JsonParser(buf.str()).parse();
        if (doc.at("format").asU64() !=
            static_cast<std::uint64_t>(kSpecFormatVersion))
            throw std::invalid_argument("format version mismatch");
        if (doc.at("key").asString() != key)
            throw std::invalid_argument("key mismatch");
        // Guard against FNV collisions and stale entries whose key
        // happens to match: the stored spec must describe the same
        // simulation, canonically.
        const ExperimentSpec stored =
            parseSpec(doc.at("spec").asString());
        if (canonicalSpec(stored) != canonical)
            throw std::invalid_argument("canonical spec mismatch");

        RunResult res = resultFromJson(doc.at("result"));
        if (!res.ok)
            throw std::invalid_argument("cached error row");
        if (const JsonValue *stats = findMember(doc, "stats"))
            res.statsDump = stats->asString();
        // Presentation fields belong to the querying spec.
        res.id = spec.id;
        res.workload = spec.workload.name();
        res.labels = spec.labels;
        out = std::move(res);
    } catch (const std::exception &) {
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }

    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
ResultCache::store(const ExperimentSpec &spec, const RunResult &res)
{
    if (!res.ok || !cacheable(spec))
        return;

    const std::string key = specKey(spec);
    std::string doc = "{\n";
    doc += "  \"format\": " + std::to_string(kSpecFormatVersion) +
           ",\n";
    doc += "  \"key\": \"" + key + "\",\n";
    doc += "  \"spec\": " + jsonQuote(serializeSpec(spec)) + ",\n";
    doc += "  \"stats\": " + jsonQuote(res.statsDump) + ",\n";
    doc += "  \"result\": " + jsonObject(res) + "\n";
    doc += "}\n";

    // The temp name must be unique across *processes*: concurrent
    // sweeps may legitimately share one cache directory.
    const std::string path = dir_ + "/" + key + ".json";
    const std::string tmp =
        path + ".tmp" + std::to_string(::getpid()) + "." +
        std::to_string(
            tmpSerial_.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return;
        os << doc;
        if (!os.flush()) {
            os.close();
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return;
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
}

std::unique_ptr<ResultCache>
resolveCache(std::string dir, bool no_cache)
{
    if (no_cache)
        return nullptr;
    if (dir.empty()) {
        if (const char *env = std::getenv("SYSSCALE_CACHE_DIR"))
            dir = env;
    }
    if (dir.empty())
        return nullptr;
    return std::make_unique<ResultCache>(std::move(dir));
}

CacheStats
ResultCache::stats() const
{
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.stores = stores_.load(std::memory_order_relaxed);
    s.corrupt = corrupt_.load(std::memory_order_relaxed);
    s.uncacheable = uncacheable_.load(std::memory_order_relaxed);
    return s;
}

} // namespace exp
} // namespace sysscale
