/**
 * @file
 * Content-addressed on-disk result cache.
 *
 * One file per cell, named <cache_dir>/<specKey(spec)>.json, holding
 * the full serialized spec (for auditability and hash-collision
 * detection) plus the RunResult JSON exactly as report.cc emits it.
 * Because the key covers everything the simulation depends on and
 * numbers are stored with round-trip precision, replaying a hit is
 * byte-identical to rerunning the cell — including the recorded
 * hostSeconds of the original execution.
 *
 * Rules:
 *  - only ok results are stored; error rows are never cached,
 *  - specs carrying a governorFactory or borrowedPolicy are not
 *    content-addressable and bypass the cache entirely,
 *  - a corrupt, unparsable, or key-mismatched file is a miss (and is
 *    overwritten by the next store),
 *  - the id and labels of a hit are taken from the querying spec,
 *    not the stored one: cells that differ only in presentation
 *    share one entry.
 *
 * Writes go through a temp file + atomic rename, so concurrent
 * workers (or concurrent sweeps sharing a directory) never expose a
 * partially written entry.
 */

#ifndef SYSSCALE_EXP_CACHE_HH
#define SYSSCALE_EXP_CACHE_HH

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>

#include "exp/experiment.hh"

namespace sysscale {
namespace exp {

/** Counters for one ResultCache instance (monotonic). */
struct CacheStats
{
    std::size_t hits = 0;        //!< Lookups served from disk.
    std::size_t misses = 0;      //!< Lookups with no usable entry.
    std::size_t stores = 0;      //!< Entries written.
    std::size_t corrupt = 0;     //!< Files rejected while looking up.
    std::size_t uncacheable = 0; //!< Specs outside content addressing.
};

class ResultCache
{
  public:
    /**
     * @param dir Cache directory; created (recursively) if absent.
     *        Throws std::runtime_error when it cannot be created.
     */
    explicit ResultCache(std::string dir);

    const std::string &dir() const { return dir_; }

    /** Whether @p spec can be content-addressed at all. */
    static bool cacheable(const ExperimentSpec &spec);

    /** File an entry for @p spec lives at (whether or not present). */
    std::string pathFor(const ExperimentSpec &spec) const;

    /**
     * Try to serve @p spec from disk. On a hit fills @p out (with
     * @p spec's own id and labels) and returns true. Never throws:
     * unreadable or mismatched entries are misses.
     */
    bool lookup(const ExperimentSpec &spec, RunResult &out);

    /**
     * Persist @p res for @p spec. No-op for error rows and
     * uncacheable specs. Write failures are swallowed (a cache must
     * never fail a sweep); the entry is simply absent next time.
     */
    void store(const ExperimentSpec &spec, const RunResult &res);

    CacheStats stats() const;

  private:
    std::string dir_;
    std::atomic<std::size_t> hits_{0};
    std::atomic<std::size_t> misses_{0};
    std::atomic<std::size_t> stores_{0};
    std::atomic<std::size_t> corrupt_{0};
    std::atomic<std::size_t> uncacheable_{0};
    std::atomic<std::size_t> tmpSerial_{0};
};

/**
 * The cache resolution every CLI shares (sweep_grid and the
 * grid-shaped benches): an explicit @p dir wins, the
 * SYSSCALE_CACHE_DIR environment variable is the fallback, and
 * @p no_cache disables both. Returns null when caching is off;
 * throws std::runtime_error when the directory cannot be created.
 */
std::unique_ptr<ResultCache> resolveCache(std::string dir,
                                          bool no_cache);

} // namespace exp
} // namespace sysscale

#endif // SYSSCALE_EXP_CACHE_HH
