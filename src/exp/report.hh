/**
 * @file
 * RunResult serialization.
 *
 * CSV and JSON emitters for experiment-grid results. Numbers are
 * formatted with round-trip precision ("%.17g") so two result sets
 * compare byte-identical exactly when the underlying doubles are
 * bit-identical — the property the determinism tests assert across
 * serial and parallel grid executions.
 */

#ifndef SYSSCALE_EXP_REPORT_HH
#define SYSSCALE_EXP_REPORT_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "exp/experiment.hh"

namespace sysscale {
namespace exp {

/**
 * Round-trip double formatting ("%.17g", locale-free) — the one
 * number format shared by the reporters, the spec codec, and the
 * result cache, so writer and reader can never drift apart.
 */
std::string formatDouble(double v);

/** JSON string literal for @p s, surrounding quotes included. */
std::string jsonQuote(const std::string &s);

/** One result as a CSV row (no trailing newline, no header). */
std::string csvRow(const RunResult &res);

/** The header matching csvRow(). */
std::string csvHeader();

/**
 * Incremental CSV emitter: the header is written on construction,
 * then one row per append(). writeCsv() is exactly a CsvWriter fed
 * the whole vector, so a streamed file and a batch-written file of
 * the same rows are byte-identical. @p flushEachRow forces a flush
 * after the header and every row — for streaming sinks that must
 * stay tailable mid-campaign; batch emitters keep the stream's own
 * buffering (flushing changes no bytes, only syscall count).
 */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os, bool flushEachRow = false);

    void append(const RunResult &res);

    std::size_t rows() const { return rows_; }

  private:
    std::ostream &os_;
    bool flushEachRow_;
    std::size_t rows_ = 0;
};

/** Write header + one row per result. */
void writeCsv(std::ostream &os,
              const std::vector<RunResult> &results);

/** One result as a JSON object. */
std::string jsonObject(const RunResult &res);

/** Write the full result set as a JSON array. */
void writeJson(std::ostream &os,
               const std::vector<RunResult> &results);

} // namespace exp
} // namespace sysscale

#endif // SYSSCALE_EXP_REPORT_HH
