#include "power/power_model.hh"

#include <cmath>

#include "sim/logging.hh"

namespace sysscale {
namespace power {

Watt
dynamicPower(double cdyn_farad, Volt v, Hertz f, double activity)
{
    SYSSCALE_ASSERT(cdyn_farad >= 0.0 && v >= 0.0 && f >= 0.0,
                    "negative dynamic-power inputs");
    // Activity above 1.0 is legal for guard-banded interfaces that
    // toggle more than the data-path reference (unoptimized MRC).
    SYSSCALE_ASSERT(activity >= 0.0 && activity <= 2.0 + 1e-9,
                    "activity %f out of [0,2]", activity);
    return cdyn_farad * v * v * f * activity;
}

Watt
leakagePower(double k_watt, Volt v, Celsius temp_c, Volt v_ref,
             Celsius t_ref, double beta_v, double beta_t)
{
    SYSSCALE_ASSERT(k_watt >= 0.0, "negative leakage coefficient");
    return k_watt * v * std::exp(beta_v * (v - v_ref)) *
           std::exp(beta_t * (temp_c - t_ref));
}

double
edp(Joule energy, double delay_seconds)
{
    return energy * delay_seconds;
}

double
ed2p(Joule energy, double delay_seconds)
{
    return energy * delay_seconds * delay_seconds;
}

PStateTable::PStateTable(const VfCurve &curve, double cdyn_farad,
                         double leak_k, Celsius temp_c,
                         std::size_t steps)
    : cdyn_(cdyn_farad), leakK_(leak_k), tempC_(temp_c), curve_(curve)
{
    if (steps < 2)
        SYSSCALE_FATAL("PStateTable needs >= 2 steps");

    const Hertz lo = curve.fmin();
    const Hertz hi = curve.fmax();
    states_.reserve(steps);
    for (std::size_t i = 0; i < steps; ++i) {
        const double t =
            static_cast<double>(i) / static_cast<double>(steps - 1);
        const Hertz f = lo + t * (hi - lo);
        const Volt v = curve.voltageAt(f);
        const Watt p = dynamicPower(cdyn_farad, v, f, 1.0) +
                       leakagePower(leak_k, v, temp_c);
        states_.push_back(PState{f, v, p});
    }
}

Watt
PStateTable::powerAt(Hertz freq, double activity) const
{
    SYSSCALE_ASSERT(!states_.empty(), "empty PStateTable");
    const Volt v = curve_.voltageAt(freq);
    return dynamicPower(cdyn_, v, freq, activity) +
           leakagePower(leakK_, v, tempC_);
}

const PState &
PStateTable::highestUnder(Watt budget) const
{
    return highestUnder(budget, 1.0);
}

const PState &
PStateTable::highestUnder(Watt budget, double activity) const
{
    SYSSCALE_ASSERT(!states_.empty(), "empty PStateTable");
    const PState *best = &states_.front();
    for (const auto &s : states_) {
        const Watt p = dynamicPower(cdyn_, s.voltage, s.freq, activity) +
                       leakagePower(leakK_, s.voltage, tempC_);
        if (p <= budget)
            best = &s;
    }
    return *best;
}

} // namespace power
} // namespace sysscale
