#include "power/pbm.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace sysscale {
namespace power {

PowerBudgetManager::PowerBudgetManager(Watt tdp, Watt reserve_w)
    : tdp_(tdp), reserve_(reserve_w)
{
    if (tdp <= 0.0)
        SYSSCALE_FATAL("PBM: non-positive TDP %.2f", tdp);
    if (reserve_w < 0.0 || reserve_w >= tdp)
        SYSSCALE_FATAL("PBM: reserve %.2f outside [0, TDP)", reserve_w);
}

void
PowerBudgetManager::setTdp(Watt tdp)
{
    if (tdp <= 0.0)
        SYSSCALE_FATAL("PBM: non-positive TDP %.2f", tdp);
    debugLog("pbm: tdp %.2f W -> %.2f W (reserve %.2f W)", tdp_, tdp,
             reserve_);
    tdp_ = tdp;
}

Watt
PowerBudgetManager::computeBudget(Watt io_w, Watt mem_w) const
{
    SYSSCALE_ASSERT(io_w >= 0.0 && mem_w >= 0.0,
                    "negative domain power");
    return std::max(0.0, tdp_ - reserve_ - io_w - mem_w);
}

ComputeSplit
PowerBudgetManager::split(Watt budget, bool gfx_active) const
{
    SYSSCALE_ASSERT(budget >= 0.0, "negative compute budget");
    if (!gfx_active) {
        // CPU-only: graphics engine sits at its idle floor, which is
        // charged outside the split.
        return ComputeSplit{budget, 0.0};
    }
    const Watt core = budget * kCoreShareGfxActive;
    return ComputeSplit{core, budget - core};
}

const PState &
PowerBudgetManager::grant(const PStateTable &table, Hertz requested,
                          Watt budget, double activity) const
{
    const Watt p = table.powerAt(requested, activity);
    if (p <= budget) {
        // Find the table state closest-below the request so callers
        // always land on a discrete P-state.
        const PState *best = &table.min();
        for (const auto &s : table.states()) {
            if (s.freq <= requested + 1.0)
                best = &s;
        }
        return *best;
    }
    return table.highestUnder(budget, activity);
}

} // namespace power
} // namespace sysscale
