#include "power/energy_meter.hh"

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace power {

void
EnergyMeter::addPower(Rail rail, Watt watts, Tick duration)
{
    SYSSCALE_ASSERT(watts >= 0.0, "negative power on rail %s",
                    std::string(railName(rail)).c_str());
    energy_[railIndex(rail)] += watts * secondsFromTicks(duration);
}

void
EnergyMeter::addEnergy(Rail rail, Joule joules)
{
    SYSSCALE_ASSERT(joules >= 0.0, "negative energy on rail %s",
                    std::string(railName(rail)).c_str());
    energy_[railIndex(rail)] += joules;
}

Joule
EnergyMeter::railEnergy(Rail rail) const
{
    return energy_[railIndex(rail)];
}

Joule
EnergyMeter::totalEnergy() const
{
    Joule sum = 0.0;
    for (auto e : energy_)
        sum += e;
    return sum;
}

Watt
EnergyMeter::railAveragePower(Rail rail, Tick now) const
{
    if (now <= windowStart_)
        return 0.0;
    return railEnergy(rail) / secondsFromTicks(now - windowStart_);
}

Watt
EnergyMeter::averagePower(Tick now) const
{
    if (now <= windowStart_)
        return 0.0;
    return totalEnergy() / secondsFromTicks(now - windowStart_);
}

void
EnergyMeter::reset(Tick now)
{
    energy_.fill(0.0);
    windowStart_ = now;
}

void
EnergyMeter::saveState(SnapshotWriter &w) const
{
    for (std::size_t i = 0; i < energy_.size(); ++i)
        w.putDouble("energy" + std::to_string(i), energy_[i]);
    w.putU64("window_start", windowStart_);
}

void
EnergyMeter::loadState(SnapshotReader &r)
{
    for (std::size_t i = 0; i < energy_.size(); ++i)
        energy_[i] = r.getDouble("energy" + std::to_string(i));
    windowStart_ = r.getU64("window_start");
}

} // namespace power
} // namespace sysscale
