/**
 * @file
 * Slew-rate-limited voltage regulator model.
 *
 * SysScale's transition flow charges ~2us per +/-100mV step at the
 * 50mV/us slew rate of the Skylake-class VRs (paper Sec. 5). The model
 * tracks the output voltage as a piecewise-linear ramp and reports the
 * ramp latency the PMU flow must wait for.
 */

#ifndef SYSSCALE_POWER_REGULATOR_HH
#define SYSSCALE_POWER_REGULATOR_HH

#include <string>

#include "power/dvfs_types.hh"
#include "sim/types.hh"

namespace sysscale {
namespace power {

/**
 * One voltage regulator output rail.
 */
class Regulator
{
  public:
    /**
     * @param rail Which rail this regulator drives.
     * @param initial Output voltage at reset.
     * @param slew_rate Volts per second (e.g. 50mV/us = 5e4 V/s).
     * @param efficiency Conversion efficiency in (0, 1]; losses are
     *        charged as extra input power.
     */
    Regulator(Rail rail, Volt initial, double slew_rate,
              double efficiency = 0.85);

    Rail rail() const { return rail_; }

    /** Current output voltage at time @p now. */
    Volt voltage(Tick now) const;

    /** Final voltage once any in-flight ramp completes. */
    Volt targetVoltage() const { return target_; }

    /** True if a ramp is still in flight at @p now. */
    bool ramping(Tick now) const { return now < rampEnd_; }

    /**
     * Begin ramping toward @p target at time @p now.
     * @return The ramp duration in ticks (0 if already at target).
     */
    Tick rampTo(Volt target, Tick now);

    /** Ramp duration for a hypothetical move to @p target. */
    Tick rampLatency(Volt target, Tick now) const;

    /**
     * Input power required to deliver @p load_w at the output,
     * accounting for conversion efficiency.
     */
    Watt inputPower(Watt load_w) const;

    double efficiency() const { return efficiency_; }
    double slewRate() const { return slewRate_; }

    /** @name Snapshot support: the in-flight ramp (rail/slew/efficiency
     *  are construction-fixed). @{ */
    void saveState(SnapshotWriter &w) const;
    void loadState(SnapshotReader &r);
    /** @} */

  private:
    Rail rail_;
    double slewRate_;
    double efficiency_;

    Volt from_ = 0.0;
    Volt target_ = 0.0;
    Tick rampStart_ = 0;
    Tick rampEnd_ = 0;
};

} // namespace power
} // namespace sysscale

#endif // SYSSCALE_POWER_REGULATOR_HH
