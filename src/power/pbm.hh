/**
 * @file
 * Power budget manager (PBM).
 *
 * The PBM keeps the SoC's average power within the thermal design
 * power (TDP) by allocating per-domain budgets and splitting the
 * compute budget between CPU cores and graphics engines (paper Sec.
 * 1, 4.3, 4.4). SysScale feeds it: when the IO/memory domains move to
 * a low operating point, their freed budget is granted to compute.
 */

#ifndef SYSSCALE_POWER_PBM_HH
#define SYSSCALE_POWER_PBM_HH

#include "power/power_model.hh"
#include "sim/types.hh"

namespace sysscale {
namespace power {

/** Compute-domain budget split between cores and graphics. */
struct ComputeSplit
{
    Watt coreBudget;
    Watt gfxBudget;
};

/**
 * TDP-constrained budget arithmetic and P-state selection.
 */
class PowerBudgetManager
{
  public:
    /**
     * @param tdp SoC thermal design power.
     * @param reserve_w Headroom kept for rails the PBM does not
     *        actively manage (PCH slice, VR losses, guard band).
     */
    explicit PowerBudgetManager(Watt tdp, Watt reserve_w = 0.0);

    Watt tdp() const { return tdp_; }
    void setTdp(Watt tdp);

    Watt reserve() const { return reserve_; }

    /**
     * Budget available to the compute domain once the IO and memory
     * domains draw @p io_w and @p mem_w. Clamped at zero: a
     * configuration whose uncore alone exceeds TDP cannot grant
     * compute anything, and the caller must throttle.
     */
    Watt computeBudget(Watt io_w, Watt mem_w) const;

    /**
     * Split the compute budget between cores and graphics.
     *
     * @param budget Compute-domain budget.
     * @param gfx_active Whether a graphics workload is running. When
     *        true the cores get only kCoreShareGfxActive of the
     *        budget (10-20% per the paper; we use 15%).
     */
    ComputeSplit split(Watt budget, bool gfx_active) const;

    /**
     * Grant a DVFS request: returns the requested state if its power
     * fits @p budget, else the highest state that does (the paper's
     * "demote ... to a safe lower frequency", Sec. 4.4).
     */
    const PState &grant(const PStateTable &table, Hertz requested,
                        Watt budget, double activity) const;

    /** Fraction of compute budget granted to cores under graphics. */
    static constexpr double kCoreShareGfxActive = 0.15;

  private:
    Watt tdp_;
    Watt reserve_;
};

} // namespace power
} // namespace sysscale

#endif // SYSSCALE_POWER_PBM_HH
