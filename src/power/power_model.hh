/**
 * @file
 * Analytic power primitives: switching power, leakage, P-states, and
 * energy-efficiency metrics (EDP).
 */

#ifndef SYSSCALE_POWER_POWER_MODEL_HH
#define SYSSCALE_POWER_POWER_MODEL_HH

#include <string>
#include <vector>

#include "power/vf_curve.hh"
#include "sim/types.hh"

namespace sysscale {
namespace power {

/**
 * Switching (dynamic) power: Cdyn * V^2 * f * activity.
 *
 * @param cdyn_farad Effective switched capacitance in farads.
 * @param v Supply voltage.
 * @param f Clock frequency.
 * @param activity Activity factor in [0, 2] (values above 1 model
 *        guard-banded interfaces toggling above the data reference).
 */
Watt dynamicPower(double cdyn_farad, Volt v, Hertz f, double activity);

/**
 * Leakage power with exponential voltage/temperature sensitivity:
 *
 *   P = k * V * exp(beta_v * (V - v_ref)) * exp(beta_t * (T - t_ref))
 *
 * @param k_watt Leakage at (v_ref, t_ref) per volt.
 * @param v Supply voltage.
 * @param temp_c Junction temperature.
 * @param v_ref Reference voltage of the characterization.
 * @param t_ref Reference temperature of the characterization.
 */
Watt leakagePower(double k_watt, Volt v, Celsius temp_c,
                  Volt v_ref = 0.8, Celsius t_ref = 50.0,
                  double beta_v = 3.0, double beta_t = 0.02);

/** Energy-delay product; lower is more efficient (Gonzalez-Horowitz). */
double edp(Joule energy, double delay_seconds);

/** Energy-delay^2; emphasizes performance over energy. */
double ed2p(Joule energy, double delay_seconds);

/**
 * One DVFS operating point of a compute unit (a P-state).
 */
struct PState
{
    Hertz freq;
    Volt voltage;
    Watt maxPower; //!< Power at activity = 1.0 (for budgeting).
};

/**
 * A P-state table built from a VfCurve and a Cdyn/leakage
 * characterization, used by the power budget manager to trade budget
 * for frequency.
 */
class PStateTable
{
  public:
    PStateTable() = default;

    /**
     * Build @p steps evenly spaced P-states over the curve span.
     *
     * @param curve V/F curve of the unit.
     * @param cdyn_farad Effective capacitance at activity 1.
     * @param leak_k Leakage coefficient (see leakagePower()).
     * @param temp_c Characterization temperature.
     * @param steps Number of P-states (>= 2).
     */
    PStateTable(const VfCurve &curve, double cdyn_farad, double leak_k,
                Celsius temp_c, std::size_t steps);

    /** Power drawn at @p freq with @p activity (interpolated). */
    Watt powerAt(Hertz freq, double activity) const;

    /**
     * Highest P-state whose full-activity power fits @p budget.
     * Returns the lowest state if nothing fits (the unit cannot be
     * turned off by the budget manager; C-states handle idling).
     */
    const PState &highestUnder(Watt budget) const;

    /** Highest P-state fitting @p budget at a given activity. */
    const PState &highestUnder(Watt budget, double activity) const;

    const std::vector<PState> &states() const { return states_; }
    const PState &min() const { return states_.front(); }
    const PState &max() const { return states_.back(); }

    double cdyn() const { return cdyn_; }
    double leakK() const { return leakK_; }
    Celsius temperature() const { return tempC_; }

  private:
    std::vector<PState> states_;
    double cdyn_ = 0.0;
    double leakK_ = 0.0;
    Celsius tempC_ = 50.0;
    VfCurve curve_;
};

} // namespace power
} // namespace sysscale

#endif // SYSSCALE_POWER_POWER_MODEL_HH
