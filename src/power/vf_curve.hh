/**
 * @file
 * Voltage/frequency curves.
 *
 * A VfCurve maps an operating frequency to the minimum functional
 * voltage (Vmin at that frequency). Curves are piecewise linear over a
 * sorted set of fused points, mirroring the per-domain V/F fuses that
 * PMU firmware interpolates on real parts.
 */

#ifndef SYSSCALE_POWER_VF_CURVE_HH
#define SYSSCALE_POWER_VF_CURVE_HH

#include <string>
#include <vector>

#include "sim/types.hh"

namespace sysscale {
namespace power {

/** One fused (frequency, minimum voltage) pair. */
struct VfPoint
{
    Hertz freq;
    Volt voltage;
};

/**
 * Piecewise-linear minimum-voltage curve for one clock domain.
 */
class VfCurve
{
  public:
    VfCurve() = default;

    /**
     * Build from fused points. Points are sorted by frequency;
     * voltage must be non-decreasing with frequency (fatal otherwise:
     * that would be a mischaracterized part).
     */
    explicit VfCurve(std::string name, std::vector<VfPoint> points);

    const std::string &name() const { return name_; }

    /** Lowest supported frequency. */
    Hertz fmin() const;

    /** Highest supported frequency. */
    Hertz fmax() const;

    /** Minimum functional voltage of the domain (voltage at fmin). */
    Volt vmin() const;

    /** Voltage at fmax. */
    Volt vmax() const;

    /**
     * Minimum functional voltage for @p freq (linear interpolation;
     * clamped to the curve ends).
     */
    Volt voltageAt(Hertz freq) const;

    /**
     * Highest frequency sustainable at @p voltage (inverse lookup,
     * clamped to [fmin, fmax]).
     */
    Hertz freqAt(Volt voltage) const;

    bool empty() const { return points_.empty(); }
    const std::vector<VfPoint> &points() const { return points_; }

  private:
    std::string name_;
    std::vector<VfPoint> points_;
};

/** @name Skylake-class reference curves (14nm mobile). @{ */

/** CPU core + LLC rail: 0.4GHz@0.55V ... 3.1GHz@1.15V. */
VfCurve skylakeCoreCurve();

/** Graphics rail: 0.3GHz@0.55V ... 1.05GHz@1.05V. */
VfCurve skylakeGfxCurve();

/**
 * System-agent rail (MC + IO interconnect + IO engines).
 * Reaches Vmin at the frequency pair used by the 1066MT/s DRAM bin,
 * which is why the paper's 800MT/s point saves almost nothing more
 * (Sec. 7.4).
 */
VfCurve skylakeSaCurve();

/** IO rail (DDRIO-digital + IO PHYs). */
VfCurve skylakeIoCurve();
/** @} */

} // namespace power
} // namespace sysscale

#endif // SYSSCALE_POWER_VF_CURVE_HH
