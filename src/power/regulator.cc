#include "power/regulator.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace power {

Regulator::Regulator(Rail rail, Volt initial, double slew_rate,
                     double efficiency)
    : rail_(rail), slewRate_(slew_rate), efficiency_(efficiency),
      from_(initial), target_(initial)
{
    if (slew_rate <= 0.0)
        SYSSCALE_FATAL("regulator %s: non-positive slew rate",
                       std::string(railName(rail)).c_str());
    if (efficiency <= 0.0 || efficiency > 1.0)
        SYSSCALE_FATAL("regulator %s: efficiency %.2f out of (0,1]",
                       std::string(railName(rail)).c_str(), efficiency);
}

Volt
Regulator::voltage(Tick now) const
{
    if (now >= rampEnd_)
        return target_;
    if (now <= rampStart_)
        return from_;
    const double t =
        static_cast<double>(now - rampStart_) /
        static_cast<double>(rampEnd_ - rampStart_);
    return from_ + t * (target_ - from_);
}

Tick
Regulator::rampLatency(Volt target, Tick now) const
{
    const double dv = std::fabs(target - voltage(now));
    return ticksFromSeconds(dv / slewRate_);
}

Tick
Regulator::rampTo(Volt target, Tick now)
{
    SYSSCALE_ASSERT(target >= 0.0, "negative rail voltage requested");
    const Volt cur = voltage(now);
    const Tick latency = rampLatency(target, now);
    from_ = cur;
    target_ = target;
    rampStart_ = now;
    rampEnd_ = now + latency;
    return latency;
}

Watt
Regulator::inputPower(Watt load_w) const
{
    SYSSCALE_ASSERT(load_w >= 0.0, "negative load power");
    return load_w / efficiency_;
}

void
Regulator::saveState(SnapshotWriter &w) const
{
    w.putDouble("from", from_);
    w.putDouble("target", target_);
    w.putU64("ramp_start", rampStart_);
    w.putU64("ramp_end", rampEnd_);
}

void
Regulator::loadState(SnapshotReader &r)
{
    from_ = r.getDouble("from");
    target_ = r.getDouble("target");
    rampStart_ = r.getU64("ramp_start");
    rampEnd_ = r.getU64("ramp_end");
}

} // namespace power
} // namespace sysscale
