/**
 * @file
 * Shared DVFS vocabulary: SoC domains and voltage rails.
 *
 * Domain and rail names follow Fig. 1 of the SysScale paper:
 *  - V_SA  shared by the memory controller, IO interconnect, and IO
 *    engines (the "system agent" rail, circled 1),
 *  - VDDQ  shared by DRAM and the DDRIO analog front end (2, 3),
 *  - V_IO  shared by DDRIO digital and the IO PHYs (4),
 *  - compute has its own core/LLC and graphics rails (5).
 */

#ifndef SYSSCALE_POWER_DVFS_TYPES_HH
#define SYSSCALE_POWER_DVFS_TYPES_HH

#include <array>
#include <cstdint>
#include <string_view>

namespace sysscale {
namespace power {

/** The three SoC domains the paper scales. */
enum class Domain : std::uint8_t { Compute = 0, Io = 1, Memory = 2 };

constexpr std::array<Domain, 3> kAllDomains = {
    Domain::Compute, Domain::Io, Domain::Memory,
};

constexpr std::string_view
domainName(Domain d)
{
    switch (d) {
      case Domain::Compute: return "compute";
      case Domain::Io: return "io";
      case Domain::Memory: return "memory";
    }
    return "?";
}

/** Physical voltage rails with dedicated regulators. */
enum class Rail : std::uint8_t
{
    VCore = 0, //!< CPU cores + LLC.
    VGfx = 1,  //!< Graphics engines.
    VSA = 2,   //!< MC + IO interconnect + IO engines (system agent).
    VIO = 3,   //!< DDRIO-digital + IO PHYs.
    VDDQ = 4,  //!< DRAM array + DDRIO-analog.
};

constexpr std::size_t kNumRails = 5;

constexpr std::array<Rail, kNumRails> kAllRails = {
    Rail::VCore, Rail::VGfx, Rail::VSA, Rail::VIO, Rail::VDDQ,
};

constexpr std::string_view
railName(Rail r)
{
    switch (r) {
      case Rail::VCore: return "v_core";
      case Rail::VGfx: return "v_gfx";
      case Rail::VSA: return "v_sa";
      case Rail::VIO: return "v_io";
      case Rail::VDDQ: return "vddq";
    }
    return "?";
}

constexpr std::size_t
railIndex(Rail r)
{
    return static_cast<std::size_t>(r);
}

} // namespace power
} // namespace sysscale

#endif // SYSSCALE_POWER_DVFS_TYPES_HH
