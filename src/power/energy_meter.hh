/**
 * @file
 * Per-rail energy accounting — the simulation stand-in for the paper's
 * NI-DAQ rail instrumentation (Sec. 6, "Power Measurements").
 *
 * Components report power over intervals; the meter integrates energy
 * per rail and answers average-power queries over arbitrary windows.
 */

#ifndef SYSSCALE_POWER_ENERGY_METER_HH
#define SYSSCALE_POWER_ENERGY_METER_HH

#include <array>

#include "power/dvfs_types.hh"
#include "sim/types.hh"

namespace sysscale {
namespace power {

/**
 * Integrates energy on each of the SoC's rails.
 */
class EnergyMeter
{
  public:
    EnergyMeter() { reset(0); }

    /** Charge @p watts drawn on @p rail for @p duration ticks. */
    void addPower(Rail rail, Watt watts, Tick duration);

    /** Charge a raw energy amount on @p rail. */
    void addEnergy(Rail rail, Joule joules);

    /** Total energy on one rail since reset. */
    Joule railEnergy(Rail rail) const;

    /** Total energy across all rails since reset. */
    Joule totalEnergy() const;

    /** Average power on one rail over [resetTick, now]. */
    Watt railAveragePower(Rail rail, Tick now) const;

    /** Average SoC power over [resetTick, now]. */
    Watt averagePower(Tick now) const;

    /** Clear all accumulators and set the window start to @p now. */
    void reset(Tick now);

    Tick windowStart() const { return windowStart_; }

    /** @name Snapshot support: bit-exact rail energies + window. @{ */
    void saveState(SnapshotWriter &w) const;
    void loadState(SnapshotReader &r);
    /** @} */

  private:
    std::array<Joule, kNumRails> energy_{};
    Tick windowStart_ = 0;
};

} // namespace power
} // namespace sysscale

#endif // SYSSCALE_POWER_ENERGY_METER_HH
