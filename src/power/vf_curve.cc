#include "power/vf_curve.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace sysscale {
namespace power {

VfCurve::VfCurve(std::string name, std::vector<VfPoint> points)
    : name_(std::move(name)), points_(std::move(points))
{
    if (points_.empty())
        SYSSCALE_FATAL("VfCurve '%s': no points", name_.c_str());

    std::sort(points_.begin(), points_.end(),
              [](const VfPoint &a, const VfPoint &b) {
                  return a.freq < b.freq;
              });

    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (points_[i].voltage < points_[i - 1].voltage) {
            SYSSCALE_FATAL(
                "VfCurve '%s': voltage not monotonic at %.0f MHz",
                name_.c_str(), points_[i].freq / kMHz);
        }
        if (points_[i].freq == points_[i - 1].freq) {
            SYSSCALE_FATAL("VfCurve '%s': duplicate frequency %.0f MHz",
                           name_.c_str(), points_[i].freq / kMHz);
        }
    }
}

Hertz
VfCurve::fmin() const
{
    SYSSCALE_ASSERT(!points_.empty(), "empty VfCurve");
    return points_.front().freq;
}

Hertz
VfCurve::fmax() const
{
    SYSSCALE_ASSERT(!points_.empty(), "empty VfCurve");
    return points_.back().freq;
}

Volt
VfCurve::vmin() const
{
    SYSSCALE_ASSERT(!points_.empty(), "empty VfCurve");
    return points_.front().voltage;
}

Volt
VfCurve::vmax() const
{
    SYSSCALE_ASSERT(!points_.empty(), "empty VfCurve");
    return points_.back().voltage;
}

Volt
VfCurve::voltageAt(Hertz freq) const
{
    SYSSCALE_ASSERT(!points_.empty(), "empty VfCurve");
    if (freq <= points_.front().freq)
        return points_.front().voltage;
    if (freq >= points_.back().freq)
        return points_.back().voltage;

    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (freq <= points_[i].freq) {
            const VfPoint &a = points_[i - 1];
            const VfPoint &b = points_[i];
            const double t = (freq - a.freq) / (b.freq - a.freq);
            return a.voltage + t * (b.voltage - a.voltage);
        }
    }
    return points_.back().voltage; // unreachable
}

Hertz
VfCurve::freqAt(Volt voltage) const
{
    SYSSCALE_ASSERT(!points_.empty(), "empty VfCurve");
    if (voltage <= points_.front().voltage)
        return points_.front().freq;
    if (voltage >= points_.back().voltage)
        return points_.back().freq;

    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (voltage <= points_[i].voltage) {
            const VfPoint &a = points_[i - 1];
            const VfPoint &b = points_[i];
            if (b.voltage == a.voltage)
                return b.freq;
            const double t =
                (voltage - a.voltage) / (b.voltage - a.voltage);
            return a.freq + t * (b.freq - a.freq);
        }
    }
    return points_.back().freq; // unreachable
}

VfCurve
skylakeCoreCurve()
{
    return VfCurve("core", {
        {0.4 * kGHz, 0.55},
        {0.8 * kGHz, 0.62},
        {1.2 * kGHz, 0.70},
        {1.6 * kGHz, 0.78},
        {2.0 * kGHz, 0.87},
        {2.4 * kGHz, 0.96},
        {2.8 * kGHz, 1.06},
        {3.1 * kGHz, 1.15},
    });
}

VfCurve
skylakeGfxCurve()
{
    return VfCurve("gfx", {
        {0.30 * kGHz, 0.55},
        {0.45 * kGHz, 0.62},
        {0.60 * kGHz, 0.70},
        {0.75 * kGHz, 0.80},
        {0.90 * kGHz, 0.92},
        {1.05 * kGHz, 1.05},
    });
}

VfCurve
skylakeSaCurve()
{
    // Indexed by IO-interconnect frequency; the MC runs at half the
    // DDR data rate on the same rail. 0.4GHz (paired with the 1066
    // bin) already sits at Vmin = 0.64V, so scaling the fabric below
    // 0.4GHz frees no further voltage (Sec. 7.4 of the paper).
    return VfCurve("sa", {
        {0.30 * kGHz, 0.64},
        {0.40 * kGHz, 0.64},
        {0.53 * kGHz, 0.68},
        {0.80 * kGHz, 0.80},
        {1.00 * kGHz, 0.90},
    });
}

VfCurve
skylakeIoCurve()
{
    // Indexed by DDRIO-digital frequency (half DDR data rate). The
    // 533MHz point (the 1066MT/s bin) sits at 0.85V = 0.85 * V_IO,
    // matching Table 1's MD-DVFS setup exactly.
    return VfCurve("io", {
        {0.40 * kGHz, 0.82},
        {0.53 * kGHz, 0.85},
        {0.80 * kGHz, 1.00},
        {0.93 * kGHz, 1.05},
    });
}

} // namespace power
} // namespace sysscale
