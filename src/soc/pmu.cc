#include "soc/pmu.hh"

#include "sim/logging.hh"
#include "soc/soc.hh"

namespace sysscale {
namespace soc {

Pmu::Pmu(Simulator &sim, Soc &soc, PerfCounterBlock &counters,
         Tick sample_interval, Tick evaluation_interval)
    : SimObject(sim, &soc, "pmu"), soc_(soc), counters_(counters),
      sampleInterval_(sample_interval),
      evalInterval_(evaluation_interval),
      sampleEvent_("pmu.sample", [this] { onSample(); },
                   Event::kPrioStatsSample),
      evalEvent_("pmu.evaluate", [this] { onEvaluate(); },
                 Event::kPrioStatsSample),
      samplesTaken_(this, "samples", "counter samples taken"),
      evaluations_(this, "evaluations", "policy evaluations run")
{
    if (sample_interval == 0 || evaluation_interval == 0)
        SYSSCALE_FATAL("Pmu: zero cadence interval");
    if (evaluation_interval % sample_interval != 0)
        SYSSCALE_FATAL("Pmu: evaluation interval not a multiple of "
                       "the sample interval");
}

Pmu::~Pmu()
{
    if (sampleEvent_.scheduled())
        eventq().deschedule(&sampleEvent_);
    if (evalEvent_.scheduled())
        eventq().deschedule(&evalEvent_);
}

void
Pmu::setPolicy(PmuPolicy *policy)
{
    policy_ = policy;
    counters_.clearWindow();
    if (policy_) {
        if (policy_->firmwareBytes() > kFirmwareBudgetBytes) {
            SYSSCALE_FATAL(
                "policy '%s' needs %zu firmware bytes, budget is %zu",
                policy_->name(), policy_->firmwareBytes(),
                kFirmwareBudgetBytes);
        }
        policy_->markInstalled();
        policy_->reset(soc_);
    }
}

void
Pmu::startup()
{
    eventq().schedule(&sampleEvent_, now() + sampleInterval_);
    eventq().schedule(&evalEvent_, now() + evalInterval_);
}

void
Pmu::onSample()
{
    counters_.sample();
    ++samplesTaken_;
    eventq().schedule(&sampleEvent_, now() + sampleInterval_);
}

void
Pmu::onEvaluate()
{
    if (policy_) {
        const CounterSnapshot avg = counters_.windowAverage();
        policy_->evaluate(soc_, avg);
        ++evaluations_;
    }
    counters_.clearWindow();
    eventq().schedule(&evalEvent_, now() + evalInterval_);
}

} // namespace soc
} // namespace sysscale
