/**
 * @file
 * The demand interface between workloads and the SoC model.
 *
 * Every simulation step the SoC asks its workload agent what each
 * compute unit is doing and how the package idles. Workload profiles
 * (src/workloads) implement this interface; the SoC never needs to
 * know which benchmark is running.
 */

#ifndef SYSSCALE_SOC_WORKLOAD_AGENT_HH
#define SYSSCALE_SOC_WORKLOAD_AGENT_HH

#include <vector>

#include "compute/cpu.hh"
#include "compute/cstates.hh"
#include "compute/gfx.hh"
#include "sim/types.hh"

namespace sysscale {
namespace soc {

/** Everything a workload demands of the SoC during one step. */
struct IntervalDemand
{
    /** Per-hardware-thread work; empty entries idle the thread. */
    std::vector<compute::CoreWork> threadWork;

    /** Graphics work (idle() when no rendering). */
    compute::GfxWork gfxWork;

    /** Best-effort IO demand (DMA clients). */
    BytesPerSec ioBestEffort = 0.0;

    /** Package idle-state residency over the step. */
    compute::CStateResidency residency;

    /**
     * OS P-state request for the CPU cores (Sec. 4.4); 0 means
     * "maximum" (race-to-finish). Battery-life workloads request the
     * most efficient frequency Pn (Sec. 7.2).
     */
    Hertz coreFreqRequest = 0.0;

    /** Graphics-driver P-state request; 0 means "maximum". */
    Hertz gfxFreqRequest = 0.0;

    /**
     * Reset to the default (idle) demand while keeping the
     * threadWork capacity. The SoC reuses one IntervalDemand across
     * steps and clears it before every demandAt() call, so agents
     * never see stale fields and the hot path never allocates.
     */
    void
    clear()
    {
        threadWork.clear();
        gfxWork = compute::GfxWork{};
        ioBestEffort = 0.0;
        residency = compute::CStateResidency{};
        coreFreqRequest = 0.0;
        gfxFreqRequest = 0.0;
    }
};

/**
 * A running workload.
 *
 * demandAt() must be observationally pure: given the same @p now it
 * fills the same demand and leaves no externally visible state
 * behind (internal cursors/caches are fine). The SoC's idle
 * skip-ahead relies on this — steps whose inputs are unchanged are
 * replayed from a cached plan without consulting the agent again.
 */
class WorkloadAgent
{
  public:
    virtual ~WorkloadAgent() = default;

    /** Fill @p demand for the step beginning at @p now. */
    virtual void demandAt(Tick now, IntervalDemand &demand) = 0;

    /** True once the workload has no more work (open-ended if not). */
    virtual bool finished(Tick now) const = 0;

    /**
     * Earliest tick at which this agent's demand may next change.
     *
     * The contract: for every t in [now, demandHorizon(now)), both
     * demandAt(t) and finished(t) are guaranteed identical to their
     * values at @p now. Returning @p now (the default) promises
     * nothing and disables skip-ahead across this agent; kMaxTick
     * means the demand never changes again. A smaller-than-necessary
     * horizon is always safe — it only costs recomputation.
     */
    virtual Tick demandHorizon(Tick now) { return now; }
};

} // namespace soc
} // namespace sysscale

#endif // SYSSCALE_SOC_WORKLOAD_AGENT_HH
