/**
 * @file
 * The demand interface between workloads and the SoC model.
 *
 * Every simulation step the SoC asks its workload agent what each
 * compute unit is doing and how the package idles. Workload profiles
 * (src/workloads) implement this interface; the SoC never needs to
 * know which benchmark is running.
 */

#ifndef SYSSCALE_SOC_WORKLOAD_AGENT_HH
#define SYSSCALE_SOC_WORKLOAD_AGENT_HH

#include <vector>

#include "compute/cpu.hh"
#include "compute/cstates.hh"
#include "compute/gfx.hh"
#include "sim/types.hh"

namespace sysscale {
namespace soc {

/** Everything a workload demands of the SoC during one step. */
struct IntervalDemand
{
    /** Per-hardware-thread work; empty entries idle the thread. */
    std::vector<compute::CoreWork> threadWork;

    /** Graphics work (idle() when no rendering). */
    compute::GfxWork gfxWork;

    /** Best-effort IO demand (DMA clients). */
    BytesPerSec ioBestEffort = 0.0;

    /** Package idle-state residency over the step. */
    compute::CStateResidency residency;

    /**
     * OS P-state request for the CPU cores (Sec. 4.4); 0 means
     * "maximum" (race-to-finish). Battery-life workloads request the
     * most efficient frequency Pn (Sec. 7.2).
     */
    Hertz coreFreqRequest = 0.0;

    /** Graphics-driver P-state request; 0 means "maximum". */
    Hertz gfxFreqRequest = 0.0;

    /**
     * Reset to the default (idle) demand while keeping the
     * threadWork capacity. The SoC reuses one IntervalDemand across
     * steps and clears it before every demandAt() call, so agents
     * never see stale fields and the hot path never allocates.
     */
    void
    clear()
    {
        threadWork.clear();
        gfxWork = compute::GfxWork{};
        ioBestEffort = 0.0;
        residency = compute::CStateResidency{};
        coreFreqRequest = 0.0;
        gfxFreqRequest = 0.0;
    }
};

/**
 * A running workload.
 */
class WorkloadAgent
{
  public:
    virtual ~WorkloadAgent() = default;

    /** Fill @p demand for the step beginning at @p now. */
    virtual void demandAt(Tick now, IntervalDemand &demand) = 0;

    /** True once the workload has no more work (open-ended if not). */
    virtual bool finished(Tick now) const = 0;
};

} // namespace soc
} // namespace sysscale

#endif // SYSSCALE_SOC_WORKLOAD_AGENT_HH
