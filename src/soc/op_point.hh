/**
 * @file
 * Multi-domain DVFS operating points.
 *
 * An OperatingPoint pins every IO/memory-domain knob SysScale's flow
 * manipulates: DRAM frequency bin, fabric clock, the two scalable
 * rail voltages (V_SA, V_IO), and which MRC register image to
 * program. The OpPointTable derives the paper's points from a
 * SocConfig and the rail V/F curves: "high" (Table 1 baseline),
 * "low" (the MD-DVFS setup), and — for the Sec. 7.4 sensitivity
 * study — the not-worth-it "low-800" point.
 */

#ifndef SYSSCALE_SOC_OP_POINT_HH
#define SYSSCALE_SOC_OP_POINT_HH

#include <string>
#include <vector>

#include "soc/config.hh"

namespace sysscale {
namespace soc {

/**
 * One IO/memory-domain operating point.
 */
struct OperatingPoint
{
    std::string name;

    /** DRAM frequency bin index. */
    std::size_t dramBin = 0;

    /** IO interconnect clock. */
    Hertz fabricFreq = 0.0;

    /** Shared system-agent rail voltage. */
    Volt vSa = 0.0;

    /** DDRIO-digital / IO PHY rail voltage. */
    Volt vIo = 0.0;

    /**
     * Bin whose MRC registers are programmed. Equal to dramBin for
     * an optimized point; a governor without per-bin MRC support
     * keeps the boot bin here (Fig. 4 penalties).
     */
    std::size_t mrcTrainedBin = 0;

    bool
    operator==(const OperatingPoint &o) const
    {
        return dramBin == o.dramBin && fabricFreq == o.fabricFreq &&
               vSa == o.vSa && vIo == o.vIo &&
               mrcTrainedBin == o.mrcTrainedBin;
    }
};

/**
 * The ordered set of operating points one SoC supports, highest
 * performance first (mirroring DramSpec bin order).
 */
class OpPointTable
{
  public:
    /**
     * Derive the table from @p cfg: one point per DRAM bin, with
     * fabric clock and rail voltages read off the Skylake V/F curves
     * (Sec. 3's alignment rule: the fabric clock is scaled so the
     * shared V_SA can drop to the bin's minimum functional voltage).
     */
    explicit OpPointTable(const SocConfig &cfg);

    std::size_t size() const { return points_.size(); }

    const OperatingPoint &point(std::size_t i) const;

    /** The boot/default point (highest DRAM bin). */
    const OperatingPoint &high() const { return point(0); }

    /**
     * The paper's low point: one bin below the default (1066MT/s on
     * LPDDR3). Falls back to high() for single-bin specs.
     */
    const OperatingPoint &low() const;

    /** Index of @p op in the table (fatal if absent). */
    std::size_t indexOf(const OperatingPoint &op) const;

    const std::vector<OperatingPoint> &points() const
    {
        return points_;
    }

  private:
    std::vector<OperatingPoint> points_;
};

/**
 * Worst-case (budget) power of the IO + memory domains at @p op:
 * what the PBM must set aside before granting the rest to compute.
 * Evaluated at @p cfg.budgetUtilization.
 *
 * @param optimized_mrc When false, the Fig. 4 termination/activity
 *        penalties of unoptimized registers are charged (a governor
 *        without per-bin MRC must budget for the hotter interface).
 */
Watt ioMemBudgetDemand(const SocConfig &cfg, const OperatingPoint &op,
                       bool optimized_mrc = true);

/** Reference DRAM traffic used when budgeting operation energy. */
constexpr BytesPerSec kBudgetTrafficBytesPerSec = 8.0e9;

} // namespace soc
} // namespace sysscale

#endif // SYSSCALE_SOC_OP_POINT_HH
