#include "soc/soc.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#include "obs/trace.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace soc {

namespace {

/** LLC capacity the workload profiles were characterized at. */
constexpr std::size_t kProfileLlcBytes = 4ull * 1024 * 1024;

/** Skip-ahead default override: -1 = follow the environment. */
std::atomic<int> g_skip_ahead_override{-1};

} // namespace

bool
Soc::skipAheadDefault()
{
    const int o = g_skip_ahead_override.load(std::memory_order_relaxed);
    if (o >= 0)
        return o != 0;
    // lint:allow nondeterminism -- opt-out knob only; the replay path
    // it gates is byte-identical to the slow path by construction
    static const bool env_on =
        std::getenv("SYSSCALE_NO_SKIP_AHEAD") == nullptr;
    return env_on;
}

void
Soc::setSkipAheadDefault(bool on)
{
    g_skip_ahead_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

Soc::Soc(Simulator &sim, SocConfig cfg)
    : SimObject(sim, nullptr, "soc"), cfg_(std::move(cfg)),
      mrc_(cfg_.dramSpec), opPoints_(cfg_),
      meter_(), pbm_(cfg_.tdp, cfg_.pbmReserve),
      vsaReg_(power::Rail::VSA, cfg_.vSaBoot, cfg_.vrSlewRate),
      vioReg_(power::Rail::VIO, cfg_.vIoBoot, cfg_.vrSlewRate),
      hdc_(cfg_.tdp),
      stepEvent_("soc.step", [this] { step(); }),
      transitions_(this, "transitions", "operating-point transitions"),
      qosViolations_(this, "qos_violations",
                     "steps with isochronous demand unmet"),
      stallTicks_(this, "stall_ticks",
                  "memory-blocked time charged by DVFS flows"),
      steps_(this, "steps", "model steps executed"),
      replayedSteps_(this, "replayed_steps",
                     "steps served by the skip-ahead replay path"),
      dramBinRes_(this, "dram_bin",
                  "time-weighted DRAM frequency bin index"),
      fabricMhzRes_(this, "fabric_mhz",
                    "time-weighted IO fabric clock (MHz)"),
      vSaRes_(this, "vsa_v", "time-weighted V_SA rail voltage"),
      vIoRes_(this, "vio_v", "time-weighted V_IO rail voltage")
{
    cfg_.validate();
    skipAhead_ = skipAheadDefault();

    dram_ = std::make_unique<dram::DramDevice>(sim, this,
                                               cfg_.dramSpec,
                                               cfg_.vddq);
    mc_ = std::make_unique<mem::MemoryController>(sim, this, *dram_,
                                                  mrc_, cfg_.vSaBoot);
    mc_->ddrio().setVio(cfg_.vIoBoot);
    fabric_ = std::make_unique<interconnect::IoFabric>(
        sim, this, cfg_.fabricFreqHigh, cfg_.vSaBoot);
    display_ = std::make_unique<io::DisplayEngine>(sim, this, csr_);
    isp_ = std::make_unique<io::IspEngine>(sim, this, csr_);
    dma_ = std::make_unique<io::DmaDevice>(sim, this, "dma");

    power::PStateTable core_table(power::skylakeCoreCurve(),
                                  cfg_.coreCdyn, cfg_.coreLeakK,
                                  cfg_.temperature, cfg_.pstateSteps);
    cpu_ = std::make_unique<compute::CpuCluster>(
        sim, this, cfg_.cores, cfg_.threadsPerCore,
        std::move(core_table));

    power::PStateTable gfx_table(power::skylakeGfxCurve(),
                                 cfg_.gfxCdyn, cfg_.gfxLeakK,
                                 cfg_.temperature, cfg_.pstateSteps);
    gfx_ = std::make_unique<compute::GfxEngine>(sim, this,
                                                std::move(gfx_table));

    llc_ = std::make_unique<compute::Llc>(sim, this, cfg_.llcBytes);
    counters_ = std::make_unique<PerfCounterBlock>(sim, this);
    pmu_ = std::make_unique<Pmu>(sim, *this, *counters_,
                                 cfg_.sampleInterval,
                                 cfg_.evaluationInterval);

    currentOp_ = opPoints_.high();
    computeBudget_ = pbm_.computeBudget(ioMemBudget(currentOp_), 0.0);
    meter_.reset(0);

    noteOpPoint(currentOp_, now());
}

void
Soc::noteOpPoint(const OperatingPoint &op, Tick t)
{
    dramBinRes_.set(static_cast<double>(op.dramBin), t);
    fabricMhzRes_.set(op.fabricFreq / kMHz, t);
    vSaRes_.set(op.vSa, t);
    vIoRes_.set(op.vIo, t);

    obs::TraceSink *sink = traceSink();
    if (TRACE_ACTIVE(sink)) {
        sink->counter(obs::kCatOpPoint, "dram_bin", t,
                      static_cast<double>(op.dramBin));
        sink->counter(obs::kCatOpPoint, "fabric_mhz", t,
                      op.fabricFreq / kMHz);
        sink->counter(obs::kCatOpPoint, "vsa_v", t, op.vSa);
        sink->counter(obs::kCatOpPoint, "vio_v", t, op.vIo);
    }
}

void
Soc::finalizeStats(Tick t)
{
    dramBinRes_.finish(t);
    fabricMhzRes_.finish(t);
    vSaRes_.finish(t);
    vIoRes_.finish(t);
}

Soc::~Soc()
{
    if (stepEvent_.scheduled())
        eventq().deschedule(&stepEvent_);
}

void
Soc::startup()
{
    eventq().schedule(&stepEvent_, now() + cfg_.stepInterval);
}

BytesPerSec
Soc::isoBandwidthDemand() const
{
    return display_->bandwidthDemand() + isp_->bandwidthDemand();
}

Watt
Soc::ioMemBudget(const OperatingPoint &op) const
{
    return ioMemBudgetDemand(cfg_, op);
}

void
Soc::setComputeBudget(Watt budget)
{
    SYSSCALE_ASSERT(budget >= 0.0, "negative compute budget");
    computeBudget_ = budget;
}

void
Soc::setTdp(Watt tdp)
{
    SYSSCALE_ASSERT(tdp > 0.0, "non-positive TDP");
    cfg_.tdp = tdp;
    pbm_.setTdp(tdp);
    hdc_ = compute::HardwareDutyCycle(tdp);
    // Re-derive the compute grant from the new envelope so the step
    // loop honors it immediately; a governor will refine it at its
    // next evaluation.
    computeBudget_ = pbm_.computeBudget(ioMemBudget(currentOp_), 0.0);

    TRACE_INSTANT(traceSink(), obs::kCatPower, "tdp_rebalance", now(),
                  obs::kv("tdp_w", tdp) + "," +
                      obs::kv("compute_budget_w", computeBudget_));
    TRACE_COUNTER(traceSink(), obs::kCatPower, "tdp_w", now(), tdp);
    debugLog("soc: tdp -> %.2f W (compute budget %.2f W)", tdp,
             computeBudget_);
}

void
Soc::noteTransition(const OperatingPoint &target, Tick flow_latency)
{
    currentOp_ = target;
    ++transitions_;
    pendingStall_ += flow_latency;
    stallTicks_ += static_cast<double>(flow_latency);
    noteOpPoint(target, now());
}

void
Soc::applyComputePStates(const IntervalDemand &demand,
                         std::size_t active_threads,
                         double avg_activity)
{
    const power::ComputeSplit split =
        pbm_.split(computeBudget_, gfxActive_);

    // Idle unit floors are charged from the budget before granting.
    const std::size_t active_cores = std::max<std::size_t>(
        1, (active_threads + cfg_.threadsPerCore - 1) /
               cfg_.threadsPerCore);

    Hertz core_req = demand.coreFreqRequest > 0.0
                         ? demand.coreFreqRequest
                         : cpu_->pstates().max().freq;
    if (coreFreqCap_ > 0.0)
        core_req = std::min(core_req, coreFreqCap_);

    const Watt core_budget = throttle_ *
        (gfxActive_ ? split.coreBudget : computeBudget_) /
        static_cast<double>(active_cores);
    cpu_->setPState(pbm_.grant(cpu_->pstates(), core_req, core_budget,
                               avg_activity));

    if (gfxActive_) {
        const Hertz gfx_req = demand.gfxFreqRequest > 0.0
                                  ? demand.gfxFreqRequest
                                  : gfx_->pstates().max().freq;
        gfx_->setPState(pbm_.grant(gfx_->pstates(), gfx_req,
                                   split.gfxBudget * throttle_,
                                   demand.gfxWork.activity));
    } else {
        gfx_->setPState(gfx_->pstates().min());
    }
}

bool
Soc::planValidAt(Tick t) const
{
    const StepPlan &p = plan_;
    if (!p.valid || t >= p.demandValidUntil)
        return false;
    if (pendingStall_ != 0 || workload_ != p.workload)
        return false;
    // Exact (bitwise) comparisons throughout: the replay path only
    // engages when its inputs are *identical*, never merely close.
    if (transitions_.value() != p.transitionsSeen ||
        throttle_ != p.throttle ||
        computeBudget_ != p.computeBudget ||
        coreFreqCap_ != p.coreFreqCap ||
        hdc_.dutyFactor() != p.dutyFactor ||
        cfg_.tdp != p.tdp ||
        lastMemLatencyNs_ != p.latencyInNs ||
        cpu_->frequency() != p.cpuFreq ||
        gfx_->frequency() != p.gfxFreq) {
        return false;
    }
    return isoBandwidthDemand() == p.iso &&
           display_->power() + isp_->power() == p.ioEnginePower;
}

void
Soc::replaySteps(Tick interval)
{
    const Tick batch_start = now();
    std::uint64_t batch_steps = 1;

    // Serve the step event that just fired from the cached plan.
    ++steps_;
    ++replayedSteps_;
    commitStep(interval, true);

    // Idle skip-ahead: batch further grid steps while nothing can
    // observe the difference — no event pending at or before the
    // next virtual step, the workload's demand horizon not reached,
    // the enclosing runUntil() window not overrun, and the replayed
    // tail itself not drifting (throttle walk, latency snap). Each
    // virtual step applies the identical mutation sequence at the
    // identical tick; the kernel just never round-trips an event per
    // step. Nothing in the commit half schedules events, so the
    // pending horizon is stable across the batch.
    Tick t = now();
    const Tick horizon = eventq().nextPendingTick();
    const Tick limit = eventq().runLimit();
    while (true) {
        const Tick next = t + interval;
        if (next >= horizon || next > limit ||
            next >= plan_.demandValidUntil ||
            throttle_ != plan_.throttle ||
            lastMemLatencyNs_ != plan_.latencyInNs) {
            break;
        }
        eventq().advanceNow(next);
        t = next;
        ++steps_;
        ++replayedSteps_;
        ++batch_steps;
        commitStep(interval, true);
    }
    eventq().schedule(&stepEvent_, t + interval);

    // One span per batch: the only trace category that differs
    // between skip-ahead on and off (filter "replay" lines to compare
    // the two byte-for-byte; see docs/OBSERVABILITY.md).
    TRACE_SPAN(traceSink(), obs::kCatReplay, "replay_batch",
               batch_start, t, obs::kv("steps", batch_steps));
}

void
Soc::step()
{
    const Tick interval = cfg_.stepInterval;

    if (skipAhead_) {
        if (planValidAt(now())) {
            planMissStreak_ = 0;
            planSkipCountdown_ = 0;
            planJustCaptured_ = false;
            replaySteps(interval);
            return;
        }
        // A capture that produced no replay before the next slow step
        // means the step dynamics are live (a latency limit cycle, a
        // stall-consuming memory phase, a governor retuning every
        // sample): back off capturing exponentially so non-replaying
        // workloads stop paying the fingerprint-and-horizon cost on
        // every step. Keyed on the capture itself, not on plan_.valid
        // — a capture voided by consumed stall must back off too. Any
        // successful replay resets the backoff.
        if (planJustCaptured_) {
            planJustCaptured_ = false;
            plan_.valid = false;
            if (planMissStreak_ < kPlanBackoffMax)
                ++planMissStreak_;
            planSkipCountdown_ = (1u << planMissStreak_) - 1;
        }
    }

    ++steps_;

    // The demand scratch persists across steps so the per-thread
    // work vector keeps its capacity: step() is the hot path under
    // every grid and must not allocate.
    IntervalDemand &demand = demandScratch_;
    demand.clear();
    if (workload_ && !workload_->finished(now()))
        workload_->demandAt(now(), demand);

    // How long the demand just presented is guaranteed to hold —
    // the replay plan captured below is dead beyond this tick. Both
    // the horizon query and the capture are skipped entirely while
    // the backoff is draining.
    const bool capture_plan = skipAhead_ && planSkipCountdown_ == 0;
    if (planSkipCountdown_ > 0)
        --planSkipCountdown_;
    Tick demand_horizon = kMaxTick;
    if (capture_plan && workload_)
        demand_horizon = workload_->demandHorizon(now());

    const compute::CStateResidency &res = demand.residency;
    const double dram_frac = res.dramActiveFraction();

    // Transition stall: memory-blocked wall time inside this step,
    // capped at kMaxStallFraction of it. The unconsumed remainder of
    // a flow longer than the cap carries into subsequent steps, so
    // the total stall charged always equals the total flow latency.
    const Tick stall_cap = static_cast<Tick>(
        kMaxStallFraction * static_cast<double>(interval));
    const Tick stall_consumed = std::min(pendingStall_, stall_cap);
    const double stall_frac = static_cast<double>(stall_consumed) /
                              static_cast<double>(interval);
    pendingStall_ -= stall_consumed;

    const double exec_frac =
        res.activeFraction() * hdc_.dutyFactor() * (1.0 - stall_frac);

    std::size_t active_threads = 0;
    double act_sum = 0.0;
    for (const auto &w : demand.threadWork) {
        if (w.cpiBase > 0.0) {
            ++active_threads;
            act_sum += w.activity;
        }
    }
    const double avg_activity =
        active_threads ? act_sum / static_cast<double>(active_threads)
                       : kIdleActivity;

    gfxActive_ = !demand.gfxWork.idle() && exec_frac > 0.0;
    applyComputePStates(demand, active_threads, avg_activity);

    const double miss_scale = llc_->missScale(kProfileLlcBytes);
    const BytesPerSec iso = isoBandwidthDemand();

    // Rates below are normalized to the DRAM-active window; CPU and
    // graphics only execute during the C0 share of it.
    const double cpu_share =
        dram_frac > 1e-9 ? exec_frac / dram_frac : 0.0;

    mem::MemDemand md;
    double latency = lastMemLatencyNs_;
    double gfx_demand_c0 = 0.0;

    // Demand and loaded latency feed back on each other (longer
    // latency caps per-thread bandwidth, which lowers queue
    // utilization, which shortens latency), so iterate to a
    // fixpoint: each pass recomputes demand from the current
    // latency estimate and stops as soon as the estimate moves by
    // no more than kMemLatencyTolNs. Steps whose latency is already
    // stable (idle intervals, steady phases — the common case) exit
    // after one pass; kMemLatencyMaxPasses bounds the rest.
    for (int pass = 0; pass < kMemLatencyMaxPasses; ++pass) {
        double cpu_bw = 0.0;
        for (const auto &w : demand.threadWork) {
            if (w.cpiBase <= 0.0)
                continue;
            compute::CoreWork scaled = w;
            scaled.mpki *= miss_scale;
            cpu_bw += cpu_->bandwidthDemand(scaled, latency);
        }
        gfx_demand_c0 = gfx_->bandwidthDemand(demand.gfxWork);

        md.cpuRead = cpu_bw * cpu_share * kCpuReadShare;
        md.cpuWrite = cpu_bw * cpu_share * (1.0 - kCpuReadShare);
        md.gfx = gfx_demand_c0 * cpu_share;
        md.ioIso = iso;
        md.ioBestEffort = demand.ioBestEffort * cpu_share;

        const double rho =
            std::min(0.96, md.total() / mc_->capacity());
        const double prev = latency;
        latency = mc_->loadedLatencyAt(rho);
        if (std::abs(latency - prev) <= kMemLatencyTolNs)
            break;
    }

    // The commit half always reads this step's compute-phase outputs
    // through the plan, replayed or not.
    plan_.dramFrac = dram_frac;
    plan_.execFrac = exec_frac;
    plan_.md = md;
    plan_.gfxDemandC0 = gfx_demand_c0;
    plan_.missScale = miss_scale;

    // Capture the replay fingerprint before the commit half mutates
    // any of the fingerprinted state. A step that consumed transition
    // stall baked stall_frac into exec_frac and must not be replayed;
    // the fingerprint's pendingStall check handles consistency, the
    // valid flag handles this capture.
    if (capture_plan) {
        planJustCaptured_ = true;
        plan_.valid = stall_consumed == 0;
        plan_.demandValidUntil = demand_horizon;
        plan_.workload = workload_;
        plan_.transitionsSeen = transitions_.value();
        plan_.throttle = throttle_;
        plan_.computeBudget = computeBudget_;
        plan_.coreFreqCap = coreFreqCap_;
        plan_.dutyFactor = hdc_.dutyFactor();
        plan_.tdp = cfg_.tdp;
        plan_.latencyInNs = lastMemLatencyNs_;
        plan_.cpuFreq = cpu_->frequency();
        plan_.gfxFreq = gfx_->frequency();
        plan_.iso = iso;
        plan_.ioEnginePower = display_->power() + isp_->power();
    }

    commitStep(interval, false);
    eventq().schedule(&stepEvent_, now() + interval);
}

inline void
Soc::commitStep(Tick interval, bool replay)
{
    const StepPlan &p = plan_;
    const IntervalDemand &demand = demandScratch_;
    const double dram_frac = p.dramFrac;

    // IO traffic crosses the fabric; CPU/GFX reach the MC via LLC.
    interconnect::FabricResult fr;
    if (dram_frac > 1e-9) {
        fr = fabric_->service(
            interconnect::FabricDemand{p.md.ioIso, p.md.ioBestEffort},
            interval);
    }

    mem::MemServiceResult ms;
    Watt vddq_power = dram_->selfRefreshPower();
    double mc_util = 0.0;
    if (dram_frac > 1e-9) {
        const Tick active_ticks = static_cast<Tick>(
            static_cast<double>(interval) * dram_frac);
        ms = mc_->service(p.md, std::max<Tick>(1, active_ticks));
        vddq_power = mc_->lastDramPower() * dram_frac +
                     dram_->selfRefreshPower() * (1.0 - dram_frac);
        mc_util = ms.utilization;
        // Bitwise latency stabilization: hold the previous estimate
        // while the fresh one sits inside the fixpoint tolerance.
        // The step's fixpoint already treats such a move as
        // converged; snapping here keeps steady phases at one exact
        // value instead of limit-cycling in the last float bits,
        // which is what lets the replay fingerprint (and therefore
        // skip-ahead) engage on active-but-steady workloads.
        if (std::abs(ms.loadedLatencyNs - lastMemLatencyNs_) >
            kMemLatencyTolNs) {
            lastMemLatencyNs_ = ms.loadedLatencyNs;
        }
    }

    if (ms.qosViolation || fr.qosViolation)
        ++qosViolations_;

    // Retire compute progress.
    double stall_cycles = 0.0;
    double instr = 0.0;
    const Tick exec_ticks = static_cast<Tick>(
        static_cast<double>(interval) * p.execFrac);
    if (exec_ticks > 0) {
        const double cpu_grant =
            p.md.cpuRead > 1e-9
                ? std::clamp(ms.achievedCpuRead / p.md.cpuRead, 1e-3,
                             1.0)
                : 1.0;
        for (const auto &w : demand.threadWork) {
            if (w.cpiBase <= 0.0)
                continue;
            compute::CoreWork scaled = w;
            scaled.mpki *= p.missScale;
            const compute::CoreResult r = cpu_->retire(
                scaled, lastMemLatencyNs_, cpu_grant, exec_ticks);
            stall_cycles += r.stallCycles;
            instr += r.instructions;
        }

        if (gfxActive_) {
            const double gfx_grant =
                p.md.gfx > 1e-9
                    ? std::clamp(ms.achievedGfx / p.md.gfx, 1e-3, 1.0)
                    : 1.0;
            gfx_->render(demand.gfxWork,
                         p.gfxDemandC0 * gfx_grant, exec_ticks);
        }
    }

    // Counter observables (raw per-step quantities).
    const double secs = secondsFromTicks(interval);
    const double gfx_misses =
        ms.achievedGfx * dram_frac * secs / 64.0;
    const double cpu_occ = ms.readPendingOccupancy * dram_frac;
    const double io_rpq = fr.readPendingOccupancy * dram_frac;
    llc_->recordInterval(ms.achievedCpuRead * dram_frac * secs / 64.0,
                         gfx_misses, stall_cycles, cpu_occ);
    counters_->accumulate(gfx_misses, cpu_occ, stall_cycles, io_rpq,
                          interval);

    // Rail power: a replayed step re-issues the captured watts in
    // the captured order — the energy meter sees the identical
    // addPower() sequence the slow path produced, without paying the
    // power-model math again.
    Watt step_power;
    if (replay) {
        meter_.addPower(power::Rail::VCore,
                        p.railWatts[power::railIndex(
                            power::Rail::VCore)], interval);
        meter_.addPower(power::Rail::VGfx,
                        p.railWatts[power::railIndex(
                            power::Rail::VGfx)], interval);
        meter_.addPower(power::Rail::VSA,
                        p.railWatts[power::railIndex(
                            power::Rail::VSA)], interval);
        meter_.addPower(power::Rail::VIO,
                        p.railWatts[power::railIndex(
                            power::Rail::VIO)], interval);
        meter_.addPower(power::Rail::VDDQ,
                        p.railWatts[power::railIndex(
                            power::Rail::VDDQ)], interval);
        meter_.addPower(power::Rail::VSA, cfg_.platformFloor,
                        interval);
        step_power = p.stepPower;
    } else {
        step_power = integratePower(demand, mc_util, fr.utilization,
                                    vddq_power, interval);
    }

    // Rail-power counters. Change-filtered in the sink, so a steady
    // phase emits one sample per level shift — and replayed steps
    // (identical watts by construction) emit nothing, keeping traces
    // byte-identical across skip-ahead on/off. integratePower() just
    // refreshed plan_.railWatts on the slow path, so p.railWatts is
    // this step's watts on both paths.
    obs::TraceSink *sink = traceSink();
    if (TRACE_ACTIVE(sink)) {
        const Tick t_now = now();
        sink->counter(obs::kCatPower, "vcore_w", t_now,
                      p.railWatts[power::railIndex(
                          power::Rail::VCore)]);
        sink->counter(obs::kCatPower, "vgfx_w", t_now,
                      p.railWatts[power::railIndex(
                          power::Rail::VGfx)]);
        sink->counter(obs::kCatPower, "vsa_w", t_now,
                      p.railWatts[power::railIndex(power::Rail::VSA)]);
        sink->counter(obs::kCatPower, "vio_w", t_now,
                      p.railWatts[power::railIndex(power::Rail::VIO)]);
        sink->counter(obs::kCatPower, "vddq_w", t_now,
                      p.railWatts[power::railIndex(
                          power::Rail::VDDQ)]);
        sink->counter(obs::kCatPower, "soc_w", t_now, step_power);
    }

    // Reactive power capping: budget models are estimates; when the
    // measured average runs above TDP the compute grant is walked
    // down (and back up once headroom returns).
    powerEwma_ = 0.98 * powerEwma_ +
                 0.02 * (step_power - cfg_.platformFloor);
    if (powerEwma_ > cfg_.tdp) {
        throttle_ = std::max(kThrottleFloor, throttle_ * 0.98);
    } else if (throttle_ < 1.0) {
        throttle_ = std::min(1.0, throttle_ * 1.01);
    }

    bwEwma_ = 0.98 * bwEwma_ + 0.02 * ms.achievedTotal() * dram_frac;

    // Run-window accumulators.
    elapsedSeconds_ += secs;
    memLatIntegral_ += lastMemLatencyNs_ * secs * dram_frac;
    memActiveSeconds_ += secs * dram_frac;
    bwIntegral_ += ms.achievedTotal() * dram_frac * secs;
    coreFreqIntegral_ += cpu_->frequency() * secs;
    if (!(currentOp_ == opPoints_.high()))
        lowPointSeconds_ += secs;

    (void)instr;
}

Watt
Soc::integratePower(const IntervalDemand &demand, double mc_util,
                    double fabric_util, Watt vddq_power,
                    Tick interval)
{
    const compute::CStateResidency &res = demand.residency;
    const double exec = res.activeFraction() * hdc_.dutyFactor();
    const double leak_w = res.computeLeakWeight();
    const double uncore_w = res.uncoreWeight();

    std::size_t active_threads = 0;
    double act_sum = 0.0;
    for (const auto &w : demand.threadWork) {
        if (w.cpiBase > 0.0) {
            ++active_threads;
            act_sum += w.activity;
        }
    }
    const double activity =
        active_threads ? act_sum / static_cast<double>(active_threads)
                       : kIdleActivity;

    // VCore: dynamic while executing, leakage weighted by C-state,
    // LLC on the same rail.
    const Watt cpu_total = active_threads
                               ? cpu_->power(active_threads, activity)
                               : cpu_->leakage();
    const Watt cpu_dyn = cpu_total - cpu_->leakage();
    const Watt llc_power = llc_->power(cpu_->voltage(), mc_util);
    const Watt v_core = cpu_dyn * exec +
                        cpu_->leakage() * leak_w + llc_power * leak_w;
    meter_.addPower(power::Rail::VCore, v_core, interval);

    // VGfx: dynamic while rendering, leakage weighted by C-state.
    const Watt gfx_total = gfx_->power(demand.gfxWork);
    const Watt gfx_leak = gfx_->power(compute::GfxWork{});
    const Watt v_gfx = gfxActive_
                           ? (gfx_total - gfx_leak) * exec +
                                 gfx_leak * leak_w
                           : gfx_leak * leak_w;
    meter_.addPower(power::Rail::VGfx, v_gfx, interval);

    // V_SA: MC + fabric + IO engines (Fig. 1, circled 1).
    const Watt v_sa =
        (mc_->controllerPower(mc_util) + fabric_->power(fabric_util) +
         display_->power() + isp_->power() +
         dma_->power(demand.ioBestEffort)) *
        uncore_w;
    meter_.addPower(power::Rail::VSA, v_sa, interval);

    // V_IO: DDRIO-digital + IO PHYs (circled 4).
    const Watt v_io = mc_->ddrioDigitalPower(mc_util) * uncore_w;
    meter_.addPower(power::Rail::VIO, v_io, interval);

    // VDDQ: DRAM + DDRIO-analog (circled 2 and 3); already blended
    // between active and self-refresh by the caller.
    meter_.addPower(power::Rail::VDDQ, vddq_power, interval);

    // Always-on platform slice outside the managed domains; charged
    // on the V_SA meter channel (same supply branch on the board).
    meter_.addPower(power::Rail::VSA, cfg_.platformFloor, interval);

    const Watt total = v_core + v_gfx + v_sa + v_io + vddq_power +
                       cfg_.platformFloor;

    // Record the per-rail watts so a fingerprint-identical step can
    // replay this exact addPower() sequence (commitStep, replay).
    plan_.railWatts[power::railIndex(power::Rail::VCore)] = v_core;
    plan_.railWatts[power::railIndex(power::Rail::VGfx)] = v_gfx;
    plan_.railWatts[power::railIndex(power::Rail::VSA)] = v_sa;
    plan_.railWatts[power::railIndex(power::Rail::VIO)] = v_io;
    plan_.railWatts[power::railIndex(power::Rail::VDDQ)] = vddq_power;
    plan_.stepPower = total;

    return total;
}

Soc::RunAccumulators
Soc::sampleAccumulators() const
{
    RunAccumulators s;
    s.instructions = cpu_->totalInstructions();
    s.frames = gfx_->totalFrames();
    for (power::Rail r : power::kAllRails)
        s.rail[power::railIndex(r)] = meter_.railEnergy(r);
    s.latInt = memLatIntegral_;
    s.latSecs = memActiveSeconds_;
    s.bwInt = bwIntegral_;
    s.freqInt = coreFreqIntegral_;
    s.lowSecs = lowPointSeconds_;
    s.elapsedSeconds = elapsedSeconds_;
    s.qos = qosViolations_.value();
    s.trans = transitions_.value();
    s.stall = stallTicks_.value();
    return s;
}

RunMetrics
Soc::run(Tick duration)
{
    SYSSCALE_ASSERT(duration > 0, "zero-length run");

    const RunAccumulators before = sampleAccumulators();
    sim().run(now() + duration);
    const RunAccumulators after = sampleAccumulators();
    return metricsBetween(before, after, secondsFromTicks(duration));
}

RunMetrics
Soc::metricsBetween(const RunAccumulators &before,
                    const RunAccumulators &after, double seconds)
{
    RunMetrics m;
    m.seconds = seconds;
    m.instructions = after.instructions - before.instructions;
    m.ips = m.instructions / m.seconds;
    m.frames = after.frames - before.frames;
    m.fps = m.frames / m.seconds;

    Joule total = 0.0;
    for (power::Rail r : power::kAllRails) {
        const std::size_t i = power::railIndex(r);
        m.railEnergy[i] = after.rail[i] - before.rail[i];
        total += m.railEnergy[i];
    }
    m.energy = total;
    m.avgPower = total / m.seconds;
    m.edp = power::edp(total, m.seconds);

    const double lat_secs = after.latSecs - before.latSecs;
    m.avgMemLatencyNs =
        lat_secs > 0.0 ? (after.latInt - before.latInt) / lat_secs
                       : 0.0;
    const double elapsed = after.elapsedSeconds - before.elapsedSeconds;
    m.avgMemBandwidth =
        elapsed > 0.0 ? (after.bwInt - before.bwInt) / elapsed : 0.0;
    m.avgCoreFreq =
        elapsed > 0.0 ? (after.freqInt - before.freqInt) / elapsed
                      : 0.0;
    m.lowPointResidency =
        elapsed > 0.0 ? (after.lowSecs - before.lowSecs) / elapsed
                      : 0.0;

    m.qosViolations =
        static_cast<std::uint64_t>(after.qos - before.qos);
    m.transitions =
        static_cast<std::uint64_t>(after.trans - before.trans);
    m.stallTicks = static_cast<Tick>(after.stall - before.stall);
    return m;
}

void
Soc::saveState(SnapshotWriter &w) const
{
    w.putDouble("tdp", cfg_.tdp);

    w.push("op");
    w.putString("name", currentOp_.name);
    w.putU64("dram_bin", currentOp_.dramBin);
    w.putDouble("fabric_freq", currentOp_.fabricFreq);
    w.putDouble("v_sa", currentOp_.vSa);
    w.putDouble("v_io", currentOp_.vIo);
    w.putU64("mrc_bin", currentOp_.mrcTrainedBin);
    w.pop();

    w.putDouble("compute_budget", computeBudget_);
    w.putDouble("core_freq_cap", coreFreqCap_);
    w.putBool("gfx_active", gfxActive_);

    w.push("plan");
    const StepPlan &p = plan_;
    w.putBool("valid", p.valid);
    w.putU64("demand_valid_until", p.demandValidUntil);
    // The pointer itself cannot survive a process boundary; record
    // whether the plan was captured against the bound workload and
    // rebind on load.
    w.putBool("workload_bound", p.workload != nullptr);
    w.putDouble("transitions_seen", p.transitionsSeen);
    w.putDouble("throttle", p.throttle);
    w.putDouble("compute_budget", p.computeBudget);
    w.putDouble("core_freq_cap", p.coreFreqCap);
    w.putDouble("duty_factor", p.dutyFactor);
    w.putDouble("tdp", p.tdp);
    w.putDouble("latency_in_ns", p.latencyInNs);
    w.putDouble("cpu_freq", p.cpuFreq);
    w.putDouble("gfx_freq", p.gfxFreq);
    w.putDouble("iso", p.iso);
    w.putDouble("io_engine_power", p.ioEnginePower);
    w.putDouble("dram_frac", p.dramFrac);
    w.putDouble("exec_frac", p.execFrac);
    w.putDouble("md_cpu_read", p.md.cpuRead);
    w.putDouble("md_cpu_write", p.md.cpuWrite);
    w.putDouble("md_gfx", p.md.gfx);
    w.putDouble("md_io_iso", p.md.ioIso);
    w.putDouble("md_io_best_effort", p.md.ioBestEffort);
    w.putDouble("gfx_demand_c0", p.gfxDemandC0);
    w.putDouble("miss_scale", p.missScale);
    for (std::size_t i = 0; i < p.railWatts.size(); ++i)
        w.putDouble("rail_w" + std::to_string(i), p.railWatts[i]);
    w.putDouble("step_power", p.stepPower);
    w.pop();

    w.putU64("plan_miss_streak", planMissStreak_);
    w.putU64("plan_skip_countdown", planSkipCountdown_);
    w.putBool("plan_just_captured", planJustCaptured_);

    w.putDouble("last_mem_latency_ns", lastMemLatencyNs_);
    w.putDouble("bw_ewma", bwEwma_);
    w.putDouble("power_ewma", powerEwma_);
    w.putDouble("throttle", throttle_);
    w.putU64("pending_stall", pendingStall_);

    w.putDouble("mem_lat_integral", memLatIntegral_);
    w.putDouble("mem_active_seconds", memActiveSeconds_);
    w.putDouble("bw_integral", bwIntegral_);
    w.putDouble("core_freq_integral", coreFreqIntegral_);
    w.putDouble("low_point_seconds", lowPointSeconds_);
    w.putDouble("elapsed_seconds", elapsedSeconds_);

    // The demand scratch feeds commitStep() on replayed steps, so a
    // restored plan needs the exact demand it was captured with.
    w.push("demand");
    const IntervalDemand &d = demandScratch_;
    w.putU64("threads", d.threadWork.size());
    for (std::size_t i = 0; i < d.threadWork.size(); ++i) {
        const compute::CoreWork &cw = d.threadWork[i];
        w.push("thread" + std::to_string(i));
        w.putDouble("cpi_base", cw.cpiBase);
        w.putDouble("mpki", cw.mpki);
        w.putDouble("blocking_factor", cw.blockingFactor);
        w.putDouble("bytes_per_instr", cw.bytesPerInstr);
        w.putDouble("activity", cw.activity);
        w.pop();
    }
    w.push("gfx");
    w.putDouble("cycles_per_frame", d.gfxWork.cyclesPerFrame);
    w.putDouble("bytes_per_frame", d.gfxWork.bytesPerFrame);
    w.putDouble("target_fps", d.gfxWork.targetFps);
    w.putDouble("activity", d.gfxWork.activity);
    w.pop();
    w.putDouble("io_best_effort", d.ioBestEffort);
    for (std::size_t i = 0; i < compute::kNumCStates; ++i)
        w.putDouble("residency" + std::to_string(i),
                    d.residency.fraction(compute::kAllCStates[i]));
    w.putDouble("core_freq_request", d.coreFreqRequest);
    w.putDouble("gfx_freq_request", d.gfxFreqRequest);
    w.pop();

    w.push("meter");
    meter_.saveState(w);
    w.pop();
    w.push("vsa_reg");
    vsaReg_.saveState(w);
    w.pop();
    w.push("vio_reg");
    vioReg_.saveState(w);
    w.pop();

    w.push("csr");
    for (const std::string &n : csr_.names())
        w.putU64(n, csr_.read(n));
    w.pop();
}

void
Soc::loadState(SnapshotReader &r)
{
    // Not setTdp(): that traces and re-derives the compute grant.
    // Apply the raw envelope; the grant is restored exactly as saved.
    const Watt tdp = r.getDouble("tdp");
    cfg_.tdp = tdp;
    pbm_.setTdp(tdp);
    hdc_ = compute::HardwareDutyCycle(tdp);

    r.push("op");
    currentOp_.name = r.getString("name");
    currentOp_.dramBin = r.getU64("dram_bin");
    currentOp_.fabricFreq = r.getDouble("fabric_freq");
    currentOp_.vSa = r.getDouble("v_sa");
    currentOp_.vIo = r.getDouble("v_io");
    currentOp_.mrcTrainedBin = r.getU64("mrc_bin");
    r.pop();

    computeBudget_ = r.getDouble("compute_budget");
    coreFreqCap_ = r.getDouble("core_freq_cap");
    gfxActive_ = r.getBool("gfx_active");

    r.push("plan");
    StepPlan &p = plan_;
    p.valid = r.getBool("valid");
    p.demandValidUntil = r.getU64("demand_valid_until");
    p.workload = r.getBool("workload_bound") ? workload_ : nullptr;
    p.transitionsSeen = r.getDouble("transitions_seen");
    p.throttle = r.getDouble("throttle");
    p.computeBudget = r.getDouble("compute_budget");
    p.coreFreqCap = r.getDouble("core_freq_cap");
    p.dutyFactor = r.getDouble("duty_factor");
    p.tdp = r.getDouble("tdp");
    p.latencyInNs = r.getDouble("latency_in_ns");
    p.cpuFreq = r.getDouble("cpu_freq");
    p.gfxFreq = r.getDouble("gfx_freq");
    p.iso = r.getDouble("iso");
    p.ioEnginePower = r.getDouble("io_engine_power");
    p.dramFrac = r.getDouble("dram_frac");
    p.execFrac = r.getDouble("exec_frac");
    p.md.cpuRead = r.getDouble("md_cpu_read");
    p.md.cpuWrite = r.getDouble("md_cpu_write");
    p.md.gfx = r.getDouble("md_gfx");
    p.md.ioIso = r.getDouble("md_io_iso");
    p.md.ioBestEffort = r.getDouble("md_io_best_effort");
    p.gfxDemandC0 = r.getDouble("gfx_demand_c0");
    p.missScale = r.getDouble("miss_scale");
    for (std::size_t i = 0; i < p.railWatts.size(); ++i)
        p.railWatts[i] = r.getDouble("rail_w" + std::to_string(i));
    p.stepPower = r.getDouble("step_power");
    r.pop();

    planMissStreak_ =
        static_cast<std::uint8_t>(r.getU64("plan_miss_streak"));
    planSkipCountdown_ =
        static_cast<std::uint16_t>(r.getU64("plan_skip_countdown"));
    planJustCaptured_ = r.getBool("plan_just_captured");

    lastMemLatencyNs_ = r.getDouble("last_mem_latency_ns");
    bwEwma_ = r.getDouble("bw_ewma");
    powerEwma_ = r.getDouble("power_ewma");
    throttle_ = r.getDouble("throttle");
    pendingStall_ = r.getU64("pending_stall");

    memLatIntegral_ = r.getDouble("mem_lat_integral");
    memActiveSeconds_ = r.getDouble("mem_active_seconds");
    bwIntegral_ = r.getDouble("bw_integral");
    coreFreqIntegral_ = r.getDouble("core_freq_integral");
    lowPointSeconds_ = r.getDouble("low_point_seconds");
    elapsedSeconds_ = r.getDouble("elapsed_seconds");

    r.push("demand");
    IntervalDemand &d = demandScratch_;
    d.threadWork.clear();
    const std::uint64_t threads = r.getU64("threads");
    for (std::uint64_t i = 0; i < threads; ++i) {
        compute::CoreWork cw;
        r.push("thread" + std::to_string(i));
        cw.cpiBase = r.getDouble("cpi_base");
        cw.mpki = r.getDouble("mpki");
        cw.blockingFactor = r.getDouble("blocking_factor");
        cw.bytesPerInstr = r.getDouble("bytes_per_instr");
        cw.activity = r.getDouble("activity");
        r.pop();
        d.threadWork.push_back(cw);
    }
    r.push("gfx");
    d.gfxWork.cyclesPerFrame = r.getDouble("cycles_per_frame");
    d.gfxWork.bytesPerFrame = r.getDouble("bytes_per_frame");
    d.gfxWork.targetFps = r.getDouble("target_fps");
    d.gfxWork.activity = r.getDouble("activity");
    r.pop();
    d.ioBestEffort = r.getDouble("io_best_effort");
    std::array<double, compute::kNumCStates> frac{};
    for (std::size_t i = 0; i < compute::kNumCStates; ++i)
        frac[i] = r.getDouble("residency" + std::to_string(i));
    // Bit-exact doubles round-trip, so the ctor's sum==1 check holds.
    d.residency = compute::CStateResidency(frac);
    d.coreFreqRequest = r.getDouble("core_freq_request");
    d.gfxFreqRequest = r.getDouble("gfx_freq_request");
    r.pop();

    r.push("meter");
    meter_.loadState(r);
    r.pop();
    r.push("vsa_reg");
    vsaReg_.loadState(r);
    r.pop();
    r.push("vio_reg");
    vioReg_.loadState(r);
    r.pop();

    r.push("csr");
    for (const std::string &n : csr_.names())
        csr_.write(n, r.getU64(n));
    r.pop();
}

} // namespace soc
} // namespace sysscale
