#include "soc/op_point.hh"

#include <algorithm>

#include "dram/power.hh"
#include "interconnect/fabric.hh"
#include "mem/controller.hh"
#include "mem/ddrio.hh"
#include "sim/logging.hh"

namespace sysscale {
namespace soc {

OpPointTable::OpPointTable(const SocConfig &cfg)
{
    const power::VfCurve sa_curve = power::skylakeSaCurve();
    const power::VfCurve io_curve = power::skylakeIoCurve();
    const dram::DramSpec &spec = cfg.dramSpec;

    points_.reserve(spec.numBins());
    for (std::size_t bin = 0; bin < spec.numBins(); ++bin) {
        OperatingPoint op;
        op.dramBin = bin;
        op.mrcTrainedBin = bin;

        // The fabric clock scales with the bin so the shared V_SA
        // rail can drop to the slower domain's Vmin (Sec. 3). The
        // highest bin keeps the boot fabric clock; lower bins scale
        // it proportionally to the DRAM clock, floored at the
        // config's low fabric clock.
        const double clock_ratio =
            spec.bin(bin).busClock() / spec.bin(0).busClock();
        op.fabricFreq = std::max(cfg.fabricFreqLow,
                                 cfg.fabricFreqHigh * clock_ratio);

        // V_SA must satisfy both the fabric and the MC (which runs
        // at the bin's MC clock on the same rail).
        const Volt v_fabric = sa_curve.voltageAt(op.fabricFreq);
        const Volt v_mc = sa_curve.voltageAt(spec.bin(bin).mcClock());
        op.vSa = std::max(v_fabric, v_mc);

        op.vIo = io_curve.voltageAt(spec.bin(bin).busClock());

        op.name = bin == 0 ? "high"
                           : "low-" + std::to_string(static_cast<int>(
                                 spec.bin(bin).dataRateMTs));
        points_.push_back(op);
    }

    // The boot point uses the configured boot voltages (guard-banded
    // above the curve minimum).
    points_[0].vSa = std::max(points_[0].vSa, cfg.vSaBoot);
    points_[0].vIo = std::max(points_[0].vIo, cfg.vIoBoot);
}

const OperatingPoint &
OpPointTable::point(std::size_t i) const
{
    SYSSCALE_ASSERT(i < points_.size(),
                    "operating point %zu out of range", i);
    return points_[i];
}

const OperatingPoint &
OpPointTable::low() const
{
    return points_.size() > 1 ? points_[1] : points_[0];
}

std::size_t
OpPointTable::indexOf(const OperatingPoint &op) const
{
    for (std::size_t i = 0; i < points_.size(); ++i) {
        if (points_[i] == op)
            return i;
    }
    SYSSCALE_FATAL("operating point '%s' not in table",
                   op.name.c_str());
}

Watt
ioMemBudgetDemand(const SocConfig &cfg, const OperatingPoint &op,
                  bool optimized_mrc)
{
    const dram::DramSpec &spec = cfg.dramSpec;
    const double util = cfg.budgetUtilization;
    const bool cross = !optimized_mrc && op.mrcTrainedBin != op.dramBin;
    const double term_factor =
        cross ? mem::MrcStore::kUnoptTerminationFactor : 1.0;
    const double act_factor =
        cross ? mem::MrcStore::kUnoptDdrioActivity : 1.0;

    const Watt mc = mem::MemoryController::powerAt(
        op.vSa, spec.bin(op.dramBin).mcClock(), util);
    const Watt fabric =
        interconnect::IoFabric::powerAt(op.vSa, op.fabricFreq, util);
    const Watt ddrio = mem::Ddrio::powerAt(
        op.vIo, spec.bin(op.dramBin).busClock(), util, act_factor);

    // DRAM operation energy is budgeted at a reference traffic
    // level: the same workload moves the same bytes per second at
    // either frequency (only capacity-clamped workloads differ), so
    // the budget delta between operating points must come from the
    // voltage/frequency-dependent components, not from phantom
    // traffic scaling.
    const dram::DramPowerModel dram_model(spec, cfg.vddq);
    const double interval_s = 1e-3;
    const double bytes =
        std::min(kBudgetTrafficBytesPerSec,
                 spec.peakBandwidth(op.dramBin) * util) * interval_s;
    const dram::DramPowerBreakdown dram_power =
        dram_model.activePower(op.dramBin, bytes * 0.7, bytes * 0.3,
                               interval_s, term_factor);

    return mc + fabric + ddrio + dram_power.total();
}

} // namespace soc
} // namespace sysscale
