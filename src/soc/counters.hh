/**
 * @file
 * The four SysScale performance counters (paper Sec. 4.2).
 *
 *  - GFX_LLC_MISSES: LLC misses from the graphics engines
 *    (graphics bandwidth demand indicator).
 *  - LLC_Occupancy_Tracer: CPU requests waiting for the memory
 *    controller (CPU bandwidth-limit indicator).
 *  - LLC_STALLS: core cycles stalled on a busy LLC (memory-latency
 *    bound indicator).
 *  - IO_RPQ: IO read-pending-queue occupancy (IO-limited indicator).
 *
 * The PMU samples the block every millisecond and averages the
 * samples over each 30ms evaluation interval (Sec. 4.3). Counter
 * values are normalized to events per millisecond so thresholds are
 * cadence-independent.
 */

#ifndef SYSSCALE_SOC_COUNTERS_HH
#define SYSSCALE_SOC_COUNTERS_HH

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace sysscale {
namespace soc {

/** Counter identifiers. */
enum class Counter : std::uint8_t
{
    GfxLlcMisses = 0,
    LlcOccupancyTracer = 1,
    LlcStalls = 2,
    IoRpq = 3,
};

constexpr std::size_t kNumCounters = 4;

constexpr std::array<Counter, kNumCounters> kAllCounters = {
    Counter::GfxLlcMisses, Counter::LlcOccupancyTracer,
    Counter::LlcStalls, Counter::IoRpq,
};

constexpr std::string_view
counterName(Counter c)
{
    switch (c) {
      case Counter::GfxLlcMisses: return "GFX_LLC_MISSES";
      case Counter::LlcOccupancyTracer: return "LLC_Occupancy_Tracer";
      case Counter::LlcStalls: return "LLC_STALLS";
      case Counter::IoRpq: return "IO_RPQ";
    }
    return "?";
}

constexpr std::size_t
counterIndex(Counter c)
{
    return static_cast<std::size_t>(c);
}

/** One reading of all four counters (events per millisecond). */
struct CounterSnapshot
{
    std::array<double, kNumCounters> values{};

    double
    operator[](Counter c) const
    {
        return values[counterIndex(c)];
    }

    double &
    operator[](Counter c)
    {
        return values[counterIndex(c)];
    }
};

/**
 * The counter block: model-side accumulation, PMU-side sampling.
 */
class PerfCounterBlock : public SimObject
{
  public:
    PerfCounterBlock(Simulator &sim, SimObject *parent);

    /**
     * Accumulate one model step's raw observables.
     *
     * @param gfx_misses Graphics LLC misses this step.
     * @param cpu_occupancy Average CPU requests pending at the MC.
     * @param stall_cycles Core cycles stalled on misses this step.
     * @param io_rpq Average IO reads pending in the fabric.
     * @param step Step length in ticks.
     */
    void accumulate(double gfx_misses, double cpu_occupancy,
                    double stall_cycles, double io_rpq, Tick step);

    /**
     * PMU 1ms sampling hook: fold the accumulation since the last
     * sample into the evaluation window and clear it.
     */
    void sample();

    /** Average of the samples collected in the current window. */
    CounterSnapshot windowAverage() const;

    /** Number of samples in the current window. */
    std::size_t windowSamples() const { return windowCount_; }

    /** PMU evaluation hook: clear the window. */
    void clearWindow();

    /** @name Snapshot support: pending + window accumulation. @{ */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    // Occupancy-style observables are time-weighted within the
    // sample; count-style ones accumulate.
    std::array<double, kNumCounters> pending_{};
    Tick pendingTicks_ = 0;

    std::array<double, kNumCounters> windowSum_{};
    std::size_t windowCount_ = 0;

    stats::Scalar samples_;
};

} // namespace soc
} // namespace sysscale

#endif // SYSSCALE_SOC_COUNTERS_HH
