#include "soc/config.hh"

#include "sim/logging.hh"

namespace sysscale {
namespace soc {

void
SocConfig::validate() const
{
    if (cores == 0 || threadsPerCore == 0)
        SYSSCALE_FATAL("%s: zero cores/threads", name.c_str());
    if (tdp <= 0.0)
        SYSSCALE_FATAL("%s: non-positive TDP %.2f", name.c_str(), tdp);
    if (pbmReserve < 0.0 || pbmReserve >= tdp)
        SYSSCALE_FATAL("%s: reserve %.2f outside [0, TDP)",
                       name.c_str(), pbmReserve);
    if (vSaBoot <= 0.0 || vIoBoot <= 0.0 || vddq <= 0.0)
        SYSSCALE_FATAL("%s: non-positive rail voltage", name.c_str());
    if (fabricFreqLow > fabricFreqHigh)
        SYSSCALE_FATAL("%s: fabric low clock above high clock",
                       name.c_str());
    if (sampleInterval == 0 || evaluationInterval == 0 ||
        stepInterval == 0) {
        SYSSCALE_FATAL("%s: zero PM cadence interval", name.c_str());
    }
    if (sampleInterval % stepInterval != 0)
        SYSSCALE_FATAL("%s: sample interval not a multiple of the "
                       "step interval", name.c_str());
    if (evaluationInterval % sampleInterval != 0)
        SYSSCALE_FATAL("%s: evaluation interval not a multiple of "
                       "the sample interval", name.c_str());
    if (budgetUtilization <= 0.0 || budgetUtilization > 1.0)
        SYSSCALE_FATAL("%s: budget utilization %.2f out of (0,1]",
                       name.c_str(), budgetUtilization);
}

SocConfig
skylakeConfig(Watt tdp)
{
    SocConfig cfg;
    cfg.name = "skylake-m6y75";
    cfg.tdp = tdp;
    cfg.validate();
    return cfg;
}

SocConfig
broadwellConfig()
{
    // The previous-generation part used for the Sec. 3 motivation
    // experiments; identical platform topology, slightly leakier
    // process and no SysScale hardware.
    SocConfig cfg;
    cfg.name = "broadwell-m5y71";
    cfg.coreCdyn = 1.15e-9;
    cfg.coreLeakK = 0.21;
    cfg.gfxLeakK = 0.25;
    cfg.validate();
    return cfg;
}

SocConfig
skylakeDdr4Config(Watt tdp)
{
    SocConfig cfg = skylakeConfig(tdp);
    cfg.name = "skylake-m6y75-ddr4";
    cfg.dramSpec = dram::ddr4Spec();
    cfg.validate();
    return cfg;
}

} // namespace soc
} // namespace sysscale
