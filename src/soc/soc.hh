/**
 * @file
 * The assembled mobile SoC (paper Fig. 1).
 *
 * Soc wires the three domains together — compute (CPU cluster,
 * graphics, LLC), IO (fabric, display, ISP, DMA), and memory (MC,
 * DDRIO, DRAM) — plus the PMU, the voltage regulators, and the
 * energy meter. The model advances in fixed interval steps: each
 * step the workload agent presents demand, the memory subsystem
 * computes achieved bandwidth and loaded latency, the compute models
 * convert service into progress, and per-rail power is integrated.
 *
 * Governors (src/core) plug in behind soc::PmuPolicy and manipulate
 * the exposed components through the transition flow.
 */

#ifndef SYSSCALE_SOC_SOC_HH
#define SYSSCALE_SOC_SOC_HH

#include <array>
#include <memory>

#include "compute/cpu.hh"
#include "compute/cstates.hh"
#include "compute/gfx.hh"
#include "compute/llc.hh"
#include "dram/device.hh"
#include "interconnect/fabric.hh"
#include "io/csr.hh"
#include "io/display.hh"
#include "io/dma.hh"
#include "io/isp.hh"
#include "mem/controller.hh"
#include "mem/mrc.hh"
#include "power/energy_meter.hh"
#include "power/pbm.hh"
#include "power/regulator.hh"
#include "sim/sim_object.hh"
#include "soc/config.hh"
#include "soc/counters.hh"
#include "soc/op_point.hh"
#include "soc/pmu.hh"
#include "soc/workload_agent.hh"

namespace sysscale {
namespace soc {

/** Aggregate metrics over one measured run window. */
struct RunMetrics
{
    double seconds = 0.0;

    /** @name Performance. @{ */
    double instructions = 0.0;
    double ips = 0.0;          //!< Instructions per second.
    double frames = 0.0;
    double fps = 0.0;          //!< Average frame rate.
    /** @} */

    /** @name Power and energy. @{ */
    Watt avgPower = 0.0;
    Joule energy = 0.0;
    double edp = 0.0;          //!< Energy x delay over the window.
    std::array<Joule, power::kNumRails> railEnergy{};
    /** @} */

    /** @name Memory subsystem. @{ */
    double avgMemLatencyNs = 0.0;
    BytesPerSec avgMemBandwidth = 0.0;
    /** @} */

    /** @name Power management. @{ */
    Hertz avgCoreFreq = 0.0;
    std::uint64_t qosViolations = 0;
    std::uint64_t transitions = 0;
    Tick stallTicks = 0;
    double lowPointResidency = 0.0; //!< Time share below the top point.
    /** @} */
};

/**
 * A Skylake-class mobile SoC instance.
 */
class Soc : public SimObject
{
  public:
    Soc(Simulator &sim, SocConfig cfg);
    ~Soc() override;

    const SocConfig &config() const { return cfg_; }
    const OpPointTable &opPoints() const { return opPoints_; }

    /** @name Component access (flow and governor plumbing). @{ */
    dram::DramDevice &dram() { return *dram_; }
    mem::MemoryController &mc() { return *mc_; }
    const mem::MrcStore &mrc() const { return mrc_; }
    interconnect::IoFabric &fabric() { return *fabric_; }
    io::CsrSpace &csr() { return csr_; }
    io::DisplayEngine &display() { return *display_; }
    io::IspEngine &isp() { return *isp_; }
    io::DmaDevice &dma() { return *dma_; }
    compute::CpuCluster &cpu() { return *cpu_; }
    compute::GfxEngine &gfx() { return *gfx_; }
    compute::Llc &llc() { return *llc_; }
    PerfCounterBlock &counters() { return *counters_; }
    Pmu &pmu() { return *pmu_; }
    power::EnergyMeter &meter() { return meter_; }
    power::PowerBudgetManager &pbm() { return pbm_; }
    power::Regulator &vsaRegulator() { return vsaReg_; }
    power::Regulator &vioRegulator() { return vioReg_; }
    /** @} */

    /** @name Operating point bookkeeping. @{ */

    /** The IO/memory-domain point currently applied. */
    const OperatingPoint &currentOpPoint() const { return currentOp_; }

    /**
     * Record a completed transition: the flow has already programmed
     * the hardware; the Soc charges the stall and re-budgets.
     *
     * @param target Point now in effect.
     * @param flow_latency Wall time memory traffic was blocked.
     */
    void noteTransition(const OperatingPoint &target,
                        Tick flow_latency);

    /** Worst-case IO+memory power of @p op (budget arithmetic). */
    Watt ioMemBudget(const OperatingPoint &op) const;

    /** Compute-domain budget currently granted by the policy. */
    Watt computeBudget() const { return computeBudget_; }

    /** Grant the compute domain @p budget (policy hook). */
    void setComputeBudget(Watt budget);

    /**
     * Change the thermal envelope mid-run (scenario thermal
     * stepping): rebases the PBM, hardware duty cycling, and the
     * current compute grant on the new TDP.
     */
    void setTdp(Watt tdp);

    /** Cap CPU frequency (CoScale-style coordination; 0 = none). */
    void setCoreFreqCap(Hertz cap) { coreFreqCap_ = cap; }

    Hertz coreFreqCap() const { return coreFreqCap_; }
    /** @} */

    /** @name Workload and execution. @{ */

    /** Bind the running workload (not owned; may be null = idle). */
    void setWorkload(WorkloadAgent *agent) { workload_ = agent; }

    /** Whether graphics rendered in the last step. */
    bool gfxActive() const { return gfxActive_; }

    /** Static isochronous demand from the IO engines (CSR-derived). */
    BytesPerSec isoBandwidthDemand() const;

    /**
     * Run the SoC for @p duration and return metrics over exactly
     * that window. Successive calls continue the same simulation
     * (use an initial run as warm-up).
     */
    RunMetrics run(Tick duration);

    /** @name Window accounting (snapshot/slicing support).
     *
     * A RunAccumulators sample captures every monotonic accumulator
     * a RunMetrics window is differenced from. run() itself is
     * implemented as sampleAccumulators() / metricsBetween(), so a
     * sliced run that carries a baseline sample across checkpoints
     * computes the final window through the identical sequence of
     * floating-point operations — byte-identical metrics.
     * @{ */
    struct RunAccumulators
    {
        double instructions = 0.0;
        double frames = 0.0;
        std::array<Joule, power::kNumRails> rail{};
        double latInt = 0.0;
        double latSecs = 0.0;
        double bwInt = 0.0;
        double freqInt = 0.0;
        double lowSecs = 0.0;
        double elapsedSeconds = 0.0;
        double qos = 0.0;
        double trans = 0.0;
        double stall = 0.0;
    };

    /** Sample every run-window accumulator at the current instant. */
    RunAccumulators sampleAccumulators() const;

    /** Metrics over a window bounded by two samples. */
    static RunMetrics metricsBetween(const RunAccumulators &before,
                                     const RunAccumulators &after,
                                     double seconds);
    /** @} */

    /** @name Snapshot support (see sim/snapshot.hh). @{ */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

    /** Loaded memory latency of the last step (ns). */
    double lastMemLatencyNs() const { return lastMemLatencyNs_; }

    /**
     * Exponentially-weighted recent memory bandwidth (time constant
     * of a few milliseconds) — the utilization signal epoch-based
     * governors like MemScale/CoScale key on.
     */
    BytesPerSec recentBandwidth() const { return bwEwma_; }

    std::uint64_t transitionCount() const
    {
        return static_cast<std::uint64_t>(transitions_.value());
    }

    std::uint64_t qosViolationCount() const
    {
        return static_cast<std::uint64_t>(qosViolations_.value());
    }
    /** @} */

    void startup() override;

    /** Read/write split assumed for CPU memory traffic. */
    static constexpr double kCpuReadShare = 0.70;

    /**
     * Reactive power-cap throttle floor. The PBM "is designed to
     * keep the average power consumption of the compute domain
     * within the allocated power budget" (Sec. 4.3); when measured
     * SoC power runs over TDP (budget models are estimates), the
     * compute grant is walked down to this floor.
     */
    static constexpr double kThrottleFloor = 0.30;

    /** Current reactive throttle multiplier (diagnostics). */
    double throttle() const { return throttle_; }

    /**
     * Largest share of one step interval that transition-flow stall
     * may consume; the remainder of a longer flow carries over into
     * the following steps (never dropped), so the stall charged over
     * a run equals the flow latency recorded by noteTransition().
     */
    static constexpr double kMaxStallFraction = 0.9;

    /**
     * Switching activity assumed when no hardware thread is active.
     * Both the P-state grant path (step()) and the power integration
     * (integratePower()) fall back to this same value, so budget
     * arithmetic and the energy meter can never disagree about what
     * an idle interval costs.
     */
    static constexpr double kIdleActivity = 0.7;

    /**
     * Loaded-latency fixpoint in step(): demand and loaded memory
     * latency feed back on each other, so the step iterates until
     * the latency estimate moves by no more than this tolerance
     * between passes (then the demand it just computed is consistent
     * with the latency it was computed from).
     */
    static constexpr double kMemLatencyTolNs = 0.01;

    /**
     * Upper bound on fixpoint passes per step. The latency curve is
     * contractive in practice (convergence is geometric), so this
     * only guards pathological configurations; the tolerance is what
     * normally terminates the loop.
     */
    static constexpr int kMemLatencyMaxPasses = 8;

    /** Transition-flow stall not yet charged to a step (carry-over). */
    Tick pendingStallTicks() const { return pendingStall_; }

    /** @name Idle skip-ahead. @{ */

    /**
     * Enable/disable the constant-step replay fast path for this
     * instance. When enabled (the default), steps whose inputs are
     * fingerprint-identical to the previous slow step are replayed
     * from a cached plan — and runs of such steps inside one run()
     * window are batched into a single event, advancing simulated
     * time analytically. Every replay applies the exact floating-
     * point operation sequence of the slow path, so all reported
     * metrics are byte-identical either way (pinned by
     * tests/test_skip_ahead.cc).
     */
    void
    setSkipAhead(bool on)
    {
        skipAhead_ = on;
        plan_.valid = false;
    }

    bool skipAheadEnabled() const { return skipAhead_; }

    /**
     * Process-wide default for new Soc instances. Initialized from
     * the environment (SYSSCALE_NO_SKIP_AHEAD disables) and
     * overridable by tools (sweep_grid --no-skip-ahead).
     */
    static bool skipAheadDefault();
    static void setSkipAheadDefault(bool on);

    /** Steps served by the replay fast path (diagnostics). */
    std::uint64_t
    replayedStepCount() const
    {
        return static_cast<std::uint64_t>(replayedSteps_.value());
    }
    /** @} */

    /**
     * Close the pending interval of the time-weighted residency
     * stats (dram_bin/fabric_mhz/vsa_v/vio_v) at @p t. Call once
     * before dumping the stats hierarchy; safe to call repeatedly.
     */
    void finalizeStats(Tick t);

  private:
    /**
     * Cached outcome of one slow-path step: the fingerprint of every
     * input it depended on plus the intermediate results the commit
     * half consumes. While the fingerprint matches, step() replays
     * the commit half from this plan instead of recomputing demand,
     * P-state grants, the latency fixpoint, and rail power.
     */
    struct StepPlan
    {
        bool valid = false;

        /** @name Input fingerprint. @{ */
        Tick demandValidUntil = 0;  //!< Workload horizon at capture.
        WorkloadAgent *workload = nullptr;
        double transitionsSeen = 0.0;
        double throttle = 1.0;
        Watt computeBudget = 0.0;
        Hertz coreFreqCap = 0.0;
        double dutyFactor = 0.0;
        Watt tdp = 0.0;
        double latencyInNs = 0.0;     //!< lastMemLatencyNs_ at capture.
        Hertz cpuFreq = 0.0;        //!< Granted P-states; catches
        Hertz gfxFreq = 0.0;        //!< out-of-band overrides.
        BytesPerSec iso = 0.0;
        Watt ioEnginePower = 0.0;   //!< Display + ISP (CSR-driven).
        /** @} */

        /** @name Cached compute-half results. @{ */
        double dramFrac = 0.0;
        double execFrac = 0.0;
        mem::MemDemand md{};
        double gfxDemandC0 = 0.0;
        double missScale = 1.0;
        /** @} */

        /** @name Rail power recorded by integratePower(). @{ */
        std::array<Watt, power::kNumRails> railWatts{};
        Watt stepPower = 0.0;
        /** @} */
    };

    void step();

    /** Residency-stat and trace-counter bookkeeping for @p op. */
    void noteOpPoint(const OperatingPoint &op, Tick t);

    /** Whether plan_ can replay the step beginning at @p t. */
    bool planValidAt(Tick t) const;

    /**
     * The commit half of a step, shared verbatim between the slow
     * path and the replay fast path: memory/fabric service, retire,
     * counter and power integration, EWMAs, and run accumulators —
     * all driven from plan_. @p replay selects the cached rail watts
     * over a fresh integratePower() pass. Force-inlined: both call
     * sites are per-step hot paths, and the compile-time-constant
     * @p replay folds the branchy halves away.
     */
    [[gnu::always_inline]] void commitStep(Tick interval, bool replay);

    /** Fast path: replay + batch grid steps, then reschedule. */
    void replaySteps(Tick interval);
    void applyComputePStates(const IntervalDemand &demand,
                             std::size_t active_threads,
                             double avg_activity);

    /** Integrate rail power for the step; returns total watts. */
    Watt integratePower(const IntervalDemand &demand,
                        double mc_util, double fabric_util,
                        Watt dram_power, Tick interval);

    SocConfig cfg_;
    mem::MrcStore mrc_;
    OpPointTable opPoints_;
    io::CsrSpace csr_;

    std::unique_ptr<dram::DramDevice> dram_;
    std::unique_ptr<mem::MemoryController> mc_;
    std::unique_ptr<interconnect::IoFabric> fabric_;
    std::unique_ptr<io::DisplayEngine> display_;
    std::unique_ptr<io::IspEngine> isp_;
    std::unique_ptr<io::DmaDevice> dma_;
    std::unique_ptr<compute::CpuCluster> cpu_;
    std::unique_ptr<compute::GfxEngine> gfx_;
    std::unique_ptr<compute::Llc> llc_;
    std::unique_ptr<PerfCounterBlock> counters_;
    std::unique_ptr<Pmu> pmu_;

    power::EnergyMeter meter_;
    power::PowerBudgetManager pbm_;
    power::Regulator vsaReg_;
    power::Regulator vioReg_;
    compute::HardwareDutyCycle hdc_;

    WorkloadAgent *workload_ = nullptr;
    IntervalDemand demandScratch_; //!< Reused every step (no alloc).
    OperatingPoint currentOp_;
    Watt computeBudget_ = 0.0;
    Hertz coreFreqCap_ = 0.0;
    bool gfxActive_ = false;
    bool skipAhead_ = true; //!< Rebound to skipAheadDefault() in ctor.
    StepPlan plan_;

    /** Capture-backoff cap: skip at most 2^max - 1 steps. */
    static constexpr std::uint8_t kPlanBackoffMax = 6;

    /** Consecutive plans invalidated before a single replay. */
    std::uint8_t planMissStreak_ = 0;

    /** Slow steps left before the next plan capture (0 = capture). */
    std::uint16_t planSkipCountdown_ = 0;

    /**
     * The previous slow step captured a plan (valid or not). If the
     * next step is another slow step, that capture bought nothing and
     * the backoff deepens; a replay clears it.
     */
    bool planJustCaptured_ = false;
    double lastMemLatencyNs_ = 60.0;
    BytesPerSec bwEwma_ = 0.0;
    Watt powerEwma_ = 0.0;
    double throttle_ = 1.0;
    Tick pendingStall_ = 0;

    EventFunctionWrapper stepEvent_;

    // Run-window accumulators (sampled by run()).
    double memLatIntegral_ = 0.0;
    double memActiveSeconds_ = 0.0;
    double bwIntegral_ = 0.0;
    double coreFreqIntegral_ = 0.0;
    double lowPointSeconds_ = 0.0;
    double elapsedSeconds_ = 0.0;

    stats::Scalar transitions_;
    stats::Scalar qosViolations_;
    stats::Scalar stallTicks_;
    stats::Scalar steps_;
    stats::Scalar replayedSteps_;

    /** @name Per-domain residency (time-weighted op-point knobs). @{ */
    stats::TimeAverage dramBinRes_;
    stats::TimeAverage fabricMhzRes_;
    stats::TimeAverage vSaRes_;
    stats::TimeAverage vIoRes_;
    /** @} */
};

} // namespace soc
} // namespace sysscale

#endif // SYSSCALE_SOC_SOC_HH
