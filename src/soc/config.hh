/**
 * @file
 * SoC configurations (paper Table 2).
 *
 * A SocConfig carries every integration-time parameter of the modeled
 * part: core counts, clocks, cache size, TDP, DRAM population, rail
 * boot voltages, and the power characterization of the compute units.
 * Factories provide the two parts the paper measures — the Skylake
 * M-6Y75 (SysScale's host) and the Broadwell M-5Y71 (motivation
 * experiments) — plus the TDP variants of the Sec. 7.4 sensitivity
 * study.
 */

#ifndef SYSSCALE_SOC_CONFIG_HH
#define SYSSCALE_SOC_CONFIG_HH

#include <cstdint>
#include <string>

#include "dram/spec.hh"
#include "power/vf_curve.hh"
#include "sim/types.hh"

namespace sysscale {
namespace soc {

/**
 * Integration-time parameters of one SoC part.
 */
struct SocConfig
{
    std::string name;

    /** @name Compute domain (Table 2). @{ */
    std::size_t cores = 2;
    std::size_t threadsPerCore = 2;
    Hertz coreBaseFreq = 1.2 * kGHz;
    Hertz gfxBaseFreq = 0.3 * kGHz;
    std::size_t llcBytes = 4ull * 1024 * 1024;
    /** @} */

    /** @name Power (Table 2 + VR boot points). @{ */
    Watt tdp = 4.5;

    /** Budget reserved for rails the PBM does not manage. */
    Watt pbmReserve = 0.25;

    /** Utilization at which operating points are costed for budget. */
    double budgetUtilization = 0.70;

    Volt vSaBoot = 0.80;  //!< V_SA at the default (high) point.
    Volt vIoBoot = 1.00;  //!< V_IO at the default (high) point.
    Volt vddq = 1.20;     //!< Fixed DRAM/DDRIO-analog voltage.

    /** VR slew rate (50mV/us per Sec. 5). */
    double vrSlewRate = 50e-3 / 1e-6;

    /**
     * Always-on platform power outside the managed domains (PCH
     * slice, VR losses, clocks) — measured at the wall alongside the
     * SoC rails, and covered by pbmReserve in budget terms.
     */
    Watt platformFloor = 0.55;

    /** Per-core effective switched capacitance. */
    double coreCdyn = 1.05e-9;

    /** Per-core leakage coefficient at (0.8V, 50C). */
    double coreLeakK = 0.18;

    /** Graphics effective switched capacitance. */
    double gfxCdyn = 1.50e-9;

    /** Graphics leakage coefficient at (0.8V, 50C). */
    double gfxLeakK = 0.22;

    /** Characterization temperature. */
    Celsius temperature = 50.0;

    /** P-states per compute unit. */
    std::size_t pstateSteps = 28;
    /** @} */

    /** @name IO and memory domains. @{ */
    dram::DramSpec dramSpec = dram::lpddr3Spec();

    Hertz fabricFreqHigh = 0.8 * kGHz;

    /**
     * Fabric clock at the low operating point; chosen to align with
     * the V_SA level the low memory bin needs (Table 1: 0.4GHz).
     */
    Hertz fabricFreqLow = 0.4 * kGHz;
    /** @} */

    /** @name Power-management cadence (Sec. 4.3). @{ */
    Tick evaluationInterval = 30 * kTicksPerMs;
    Tick sampleInterval = 1 * kTicksPerMs;
    Tick stepInterval = 100 * kTicksPerUs;
    /** @} */

    /** Sanity-check invariants (fatal on violation). */
    void validate() const;

    // Every field participates: a new config knob must be added here
    // AND to the exp/spec_codec encoding, or cached results keyed on
    // the old encoding would silently alias the new configuration.
    bool
    operator==(const SocConfig &o) const
    {
        return name == o.name && cores == o.cores &&
               threadsPerCore == o.threadsPerCore &&
               coreBaseFreq == o.coreBaseFreq &&
               gfxBaseFreq == o.gfxBaseFreq &&
               llcBytes == o.llcBytes && tdp == o.tdp &&
               pbmReserve == o.pbmReserve &&
               budgetUtilization == o.budgetUtilization &&
               vSaBoot == o.vSaBoot && vIoBoot == o.vIoBoot &&
               vddq == o.vddq && vrSlewRate == o.vrSlewRate &&
               platformFloor == o.platformFloor &&
               coreCdyn == o.coreCdyn && coreLeakK == o.coreLeakK &&
               gfxCdyn == o.gfxCdyn && gfxLeakK == o.gfxLeakK &&
               temperature == o.temperature &&
               pstateSteps == o.pstateSteps &&
               dramSpec == o.dramSpec &&
               fabricFreqHigh == o.fabricFreqHigh &&
               fabricFreqLow == o.fabricFreqLow &&
               evaluationInterval == o.evaluationInterval &&
               sampleInterval == o.sampleInterval &&
               stepInterval == o.stepInterval;
    }
};

/** The Skylake M-6Y75 mobile SoC (Table 2), 4.5W TDP default. */
SocConfig skylakeConfig(Watt tdp = 4.5);

/** The Broadwell M-5Y71 used for the motivation data (Sec. 3). */
SocConfig broadwellConfig();

/** Skylake with the DDR4 population of the Sec. 7.4 study. */
SocConfig skylakeDdr4Config(Watt tdp = 4.5);

} // namespace soc
} // namespace sysscale

#endif // SYSSCALE_SOC_CONFIG_HH
