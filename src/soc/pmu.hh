/**
 * @file
 * Power management unit (PMU) firmware host.
 *
 * The PMU runs the power-distribution algorithm "periodically at a
 * configurable time interval called evaluation interval (30ms by
 * default)" and "samples the performance counters and CSRs multiple
 * times in an evaluation interval (e.g., every 1ms)" (Sec. 4.3).
 * The policy itself (SysScale or a baseline) plugs in behind the
 * PmuPolicy interface; the PMU provides the cadence, the counter
 * access, and the firmware/SRAM budget accounting of Sec. 5.
 */

#ifndef SYSSCALE_SOC_PMU_HH
#define SYSSCALE_SOC_PMU_HH

#include <cstdint>

#include "sim/sim_object.hh"
#include "soc/counters.hh"

namespace sysscale {
namespace soc {

class Soc;

/**
 * A power-management policy hosted by the PMU firmware.
 */
class PmuPolicy
{
  public:
    virtual ~PmuPolicy() = default;

    /** Policy name for reports. */
    virtual const char *name() const = 0;

    /** Called once when the policy is installed. */
    virtual void reset(Soc &soc) { (void)soc; }

    /**
     * Evaluation-interval hook: decide the operating point and the
     * compute budget from the window-averaged counters.
     */
    virtual void evaluate(Soc &soc, const CounterSnapshot &avg) = 0;

    /**
     * Firmware bytes this policy adds to the PMU image (Sec. 5
     * charges SysScale ~0.6KB).
     */
    virtual std::size_t firmwareBytes() const { return 0; }

    /** @name Snapshot support: stateless policies need nothing. @{ */
    virtual void saveState(SnapshotWriter &w) const { (void)w; }
    virtual void loadState(SnapshotReader &r) { (void)r; }
    /** @} */

    /**
     * True once this instance has ever been installed in a PMU.
     * Stateful policies (the adaptive governor's learned thresholds)
     * must not leak across experiment cells, so the runner asserts
     * each factory-built policy is a never-installed instance.
     */
    bool everInstalled() const { return everInstalled_; }

    /** Recorded by Pmu::setPolicy; sticky across reset(). */
    void markInstalled() { everInstalled_ = true; }

  private:
    bool everInstalled_ = false;
};

/**
 * The PMU: sampling/evaluation cadence and policy hosting.
 */
class Pmu : public SimObject
{
  public:
    Pmu(Simulator &sim, Soc &soc, PerfCounterBlock &counters,
        Tick sample_interval, Tick evaluation_interval);
    ~Pmu() override;

    /** Install @p policy (not owned). Resets the window. */
    void setPolicy(PmuPolicy *policy);

    PmuPolicy *policy() { return policy_; }

    /** Begin the periodic sampling/evaluation events. */
    void startup() override;

    Tick sampleInterval() const { return sampleInterval_; }
    Tick evaluationInterval() const { return evalInterval_; }

    /** Samples per evaluation window. */
    std::size_t samplesPerWindow() const
    {
        return static_cast<std::size_t>(evalInterval_ /
                                        sampleInterval_);
    }

    /** Total evaluations run. */
    std::uint64_t evaluations() const
    {
        return static_cast<std::uint64_t>(evaluations_.value());
    }

    /** Firmware SRAM budget for policy code (Sec. 5: ~0.6KB). */
    static constexpr std::size_t kFirmwareBudgetBytes = 640;

  private:
    void onSample();
    void onEvaluate();

    Soc &soc_;
    PerfCounterBlock &counters_;
    Tick sampleInterval_;
    Tick evalInterval_;
    PmuPolicy *policy_ = nullptr;

    EventFunctionWrapper sampleEvent_;
    EventFunctionWrapper evalEvent_;

    stats::Scalar samplesTaken_;
    stats::Scalar evaluations_;
};

} // namespace soc
} // namespace sysscale

#endif // SYSSCALE_SOC_PMU_HH
