#include "soc/counters.hh"

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace sysscale {
namespace soc {

PerfCounterBlock::PerfCounterBlock(Simulator &sim, SimObject *parent)
    : SimObject(sim, parent, "counters"),
      samples_(this, "samples", "PMU counter samples taken")
{
}

void
PerfCounterBlock::accumulate(double gfx_misses, double cpu_occupancy,
                             double stall_cycles, double io_rpq,
                             Tick step)
{
    SYSSCALE_ASSERT(step > 0, "zero-length counter step");

    const double w = static_cast<double>(step);
    pending_[counterIndex(Counter::GfxLlcMisses)] += gfx_misses;
    pending_[counterIndex(Counter::LlcOccupancyTracer)] +=
        cpu_occupancy * w;
    pending_[counterIndex(Counter::LlcStalls)] += stall_cycles;
    pending_[counterIndex(Counter::IoRpq)] += io_rpq * w;
    pendingTicks_ += step;
}

void
PerfCounterBlock::sample()
{
    if (pendingTicks_ == 0) {
        // An idle sample period contributes zeros (the SoC slept).
        for (std::size_t i = 0; i < kNumCounters; ++i)
            windowSum_[i] += 0.0;
        ++windowCount_;
        ++samples_;
        return;
    }

    const double ms = msFromTicks(pendingTicks_);
    const double w = static_cast<double>(pendingTicks_);

    // Counts normalize to events/ms; occupancies to time-weighted
    // averages over the sample period.
    windowSum_[counterIndex(Counter::GfxLlcMisses)] +=
        pending_[counterIndex(Counter::GfxLlcMisses)] / ms;
    windowSum_[counterIndex(Counter::LlcOccupancyTracer)] +=
        pending_[counterIndex(Counter::LlcOccupancyTracer)] / w;
    windowSum_[counterIndex(Counter::LlcStalls)] +=
        pending_[counterIndex(Counter::LlcStalls)] / ms;
    windowSum_[counterIndex(Counter::IoRpq)] +=
        pending_[counterIndex(Counter::IoRpq)] / w;

    pending_.fill(0.0);
    pendingTicks_ = 0;
    ++windowCount_;
    ++samples_;
}

CounterSnapshot
PerfCounterBlock::windowAverage() const
{
    CounterSnapshot snap;
    if (windowCount_ == 0)
        return snap;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
        snap.values[i] =
            windowSum_[i] / static_cast<double>(windowCount_);
    }
    return snap;
}

void
PerfCounterBlock::clearWindow()
{
    windowSum_.fill(0.0);
    windowCount_ = 0;
}

void
PerfCounterBlock::saveState(SnapshotWriter &w) const
{
    for (std::size_t i = 0; i < kNumCounters; ++i)
        w.putDouble("pending" + std::to_string(i), pending_[i]);
    w.putU64("pending_ticks", pendingTicks_);
    for (std::size_t i = 0; i < kNumCounters; ++i)
        w.putDouble("window_sum" + std::to_string(i), windowSum_[i]);
    w.putU64("window_count", windowCount_);
}

void
PerfCounterBlock::loadState(SnapshotReader &r)
{
    for (std::size_t i = 0; i < kNumCounters; ++i)
        pending_[i] = r.getDouble("pending" + std::to_string(i));
    pendingTicks_ = r.getU64("pending_ticks");
    for (std::size_t i = 0; i < kNumCounters; ++i)
        windowSum_[i] = r.getDouble("window_sum" + std::to_string(i));
    windowCount_ = r.getU64("window_count");
}

} // namespace soc
} // namespace sysscale
